package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/taxi"
)

// LowCostTypes and LuxuryTypes group products the way Fig 7 does.
var (
	LowCostTypes = []core.VehicleType{core.UberX, core.UberXL, core.UberFAMILY, core.UberPOOL}
	LuxuryTypes  = []core.VehicleType{core.UberBLACK, core.UberSUV}
)

// ---------------------------------------------------------------- Fig 2

// Fig2Row is one visibility-radius measurement.
type Fig2Row struct {
	City    string
	Hour    int
	RadiusM float64
}

// Fig2VisibilityRadius measures the visibility radius at the city center
// at each requested hour of day, reproducing Fig 2's diurnal curve
// (radius shrinks when cars are dense).
func Fig2VisibilityRadius(seed int64, hours []int) []Fig2Row {
	var out []Fig2Row
	// A single four-walker run is noisy (cars churn during the walk);
	// average three start points per hour, like repeating the paper's
	// experiment "over several days with different random locations".
	starts := []geo.Point{{X: 0, Y: 0}, {X: 400, Y: -300}, {X: -500, Y: 400}}
	for _, profile := range []*sim.CityProfile{sim.Manhattan(), sim.SanFrancisco()} {
		svc := api.NewBackend(profile, seed, false)
		for _, h := range hours {
			svc.RunUntil(int64(h) * 3600)
			var sum float64
			n := 0
			for _, start := range starts {
				res, err := client.MeasureVisibilityRadius(
					svc, svc, svc, svc.World().Projection(), start, core.UberX)
				if err != nil || res.Radius <= 0 {
					continue
				}
				sum += res.Radius
				n++
			}
			if n == 0 {
				continue
			}
			out = append(out, Fig2Row{City: profile.Name, Hour: h, RadiusM: sum / float64(n)})
		}
	}
	return out
}

// ---------------------------------------------------------------- Fig 4

// Fig4TaxiValidation runs the ground-truth validation experiment: a
// synthetic NYC taxi day, replayed and measured by 172 clients.
func Fig4TaxiValidation(seed int64, taxis int, startHour, endHour int64) *taxi.Result {
	tr := taxi.GenerateTrace(taxi.GenConfig{Seed: seed, Days: 1, Taxis: taxis})
	return taxi.Validate(tr, seed, startHour*3600, endHour*3600)
}

// ---------------------------------------------------------------- Fig 7

// Fig7Group is one lifespan CDF group.
type Fig7Group struct {
	City  string
	Group string // "low-cost" or "luxury"
	Hours *stats.CDF
	N     int
}

// Fig7Lifespans builds the car-lifespan CDFs after short-lived cleaning.
func Fig7Lifespans(runs ...*CityRun) []Fig7Group {
	var out []Fig7Group
	for _, r := range runs {
		for _, g := range []struct {
			name  string
			types []core.VehicleType
		}{{"low-cost", LowCostTypes}, {"luxury", LuxuryTypes}} {
			var hours []float64
			for _, vt := range g.types {
				for _, s := range r.Dataset.Lifespans(vt) {
					hours = append(hours, s/3600)
				}
			}
			out = append(out, Fig7Group{
				City: r.Profile.Name, Group: g.name,
				Hours: stats.NewCDF(hours), N: len(hours),
			})
		}
	}
	return out
}

// ---------------------------------------------------------------- Fig 8

// Fig8City bundles the time-series panel for one city.
type Fig8City struct {
	City   string
	Supply map[core.VehicleType]*stats.Series
	Demand map[core.VehicleType]*stats.Series
	Surge  *stats.Series
	EWT    *stats.Series
}

// Fig8TimeSeries extracts the four panels of Fig 8.
func Fig8TimeSeries(r *CityRun) Fig8City {
	out := Fig8City{
		City:   r.Profile.Name,
		Supply: map[core.VehicleType]*stats.Series{},
		Demand: map[core.VehicleType]*stats.Series{},
		Surge:  r.Dataset.SurgeSeries(),
		EWT:    r.Dataset.EWTSeries(),
	}
	for _, vt := range measure.TrackedTypes {
		out.Supply[vt] = r.Dataset.SupplySeries(vt)
		out.Demand[vt] = r.Dataset.DeathSeries(vt)
	}
	return out
}

// HourlyMean collapses a 5-minute series to hour-of-day means.
func HourlyMean(s *stats.Series) [24]float64 {
	var sum, n [24]float64
	for i, v := range s.Values {
		if math.IsNaN(v) {
			continue
		}
		t := s.Start + int64(i)*s.Step
		h := sim.HourOfDay(t)
		sum[h] += v
		n[h]++
	}
	var out [24]float64
	for h := range out {
		if n[h] > 0 {
			out[h] = sum[h] / n[h]
		}
	}
	return out
}

// SeriesMean averages the non-NaN values of a series.
func SeriesMean(s *stats.Series) float64 {
	var sum float64
	n := 0
	for _, v := range s.Values {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// ---------------------------------------------------------------- Figs 9/10

// HeatCell is one client cell of the spatial heatmaps.
type HeatCell struct {
	Pos        geo.Point
	CarsPerDay float64
	// CarsCI is the 95% confidence half-width of CarsPerDay across days
	// (NaN for single-day runs; the paper reports these per-square CIs).
	CarsCI     float64
	MeanEWTMin float64
}

// Fig9_10Heatmaps computes per-client average unique cars per day (with
// its across-days confidence interval) and mean EWT.
func Fig9_10Heatmaps(r *CityRun) []HeatCell {
	out := make([]HeatCell, len(r.Campaign.Clients))
	for i := range r.Campaign.Clients {
		days := r.Dataset.ClientCarDays[i]
		xs := make([]float64, len(days))
		for j, n := range days {
			xs[j] = float64(n)
		}
		mc := stats.MeanWithCI(xs)
		cars := mc.Mean
		if math.IsNaN(cars) {
			cars = 0
		}
		out[i] = HeatCell{
			Pos:        r.Campaign.Clients[i].Pos,
			CarsPerDay: cars,
			CarsCI:     mc.CI,
			MeanEWTMin: r.Dataset.ClientMeanEWT(i),
		}
	}
	return out
}

// HeatmapASCII renders heat cells as a text heatmap (darker character =
// larger value), reconstructing the grid from the cells' positions. field
// selects the plotted value.
func HeatmapASCII(cells []HeatCell, field func(HeatCell) float64) string {
	if len(cells) == 0 {
		return ""
	}
	// Collect the distinct x and y coordinates (the campaign grid).
	xs := map[float64]int{}
	ys := map[float64]int{}
	for _, c := range cells {
		xs[c.Pos.X] = 0
		ys[c.Pos.Y] = 0
	}
	xv := sortedKeys(xs)
	yv := sortedKeys(ys)
	for i, x := range xv {
		xs[x] = i
	}
	for i, y := range yv {
		ys[y] = i
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range cells {
		v := field(c)
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	shades := []byte(" .:-=+*#%@")
	grid := make([][]byte, len(yv))
	for i := range grid {
		grid[i] = bytesRepeat(' ', len(xv))
	}
	for _, c := range cells {
		v := field(c)
		if math.IsNaN(v) {
			continue
		}
		f := 0.0
		if hi > lo {
			f = (v - lo) / (hi - lo)
		}
		idx := int(f * float64(len(shades)-1))
		grid[ys[c.Pos.Y]][xs[c.Pos.X]] = shades[idx]
	}
	// North at the top.
	var sb strings.Builder
	for r := len(grid) - 1; r >= 0; r-- {
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	return sb.String()
}

func sortedKeys(m map[float64]int) []float64 {
	out := make([]float64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Float64s(out)
	return out
}

func bytesRepeat(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// ---------------------------------------------------------------- Fig 11

// Fig11EWT builds the EWT CDF (minutes) for a city.
func Fig11EWT(r *CityRun) *stats.CDF {
	xs := make([]float64, len(r.Dataset.EWTSamples))
	for i, v := range r.Dataset.EWTSamples {
		xs[i] = float64(v)
	}
	return stats.NewCDF(xs)
}

// ---------------------------------------------------------------- Fig 12

// Fig12Surge builds the surge-multiplier CDF for a city.
func Fig12Surge(r *CityRun) *stats.CDF {
	xs := make([]float64, len(r.Dataset.SurgeSamples))
	for i, v := range r.Dataset.SurgeSamples {
		xs[i] = float64(v)
	}
	return stats.NewCDF(xs)
}

// ---------------------------------------------------------------- Fig 13

// Fig13Durations holds the surge-duration CDFs for the two datastreams.
type Fig13Durations struct {
	City string
	// API is the February/API behaviour: pure 5-minute clock.
	API *stats.CDF
	// Client is the April client datastream: jitter fragments episodes.
	Client *stats.CDF
}

// Fig13SurgeDurations reconstructs surge episode lengths (seconds) from
// the API probes and from every campaign client's change log.
func Fig13SurgeDurations(r *CityRun) Fig13Durations {
	var apiDur, cliDur []float64
	for _, p := range r.APIProbes {
		apiDur = append(apiDur, measure.SurgeDurations(p.Log, 1, 0, r.End)...)
	}
	for _, log := range r.Dataset.Changes {
		cliDur = append(cliDur, measure.SurgeDurations(log, 1, 0, r.End)...)
	}
	return Fig13Durations{
		City:   r.Profile.Name,
		API:    stats.NewCDF(apiDur),
		Client: stats.NewCDF(cliDur),
	}
}

// ---------------------------------------------------------------- Fig 14

// Fig14Timeline reconstructs a window of the API and client multiplier
// step functions for one area/client pair.
type Fig14Timeline struct {
	City     string
	Start    int64
	End      int64
	APILog   []measure.SurgeChange
	ClientLo []measure.SurgeChange
}

// Fig14SurgeTimeline extracts the change logs for area 0 / client 0 over
// a window, defaulting to the busiest stretch.
func Fig14SurgeTimeline(r *CityRun, start, end int64) Fig14Timeline {
	out := Fig14Timeline{City: r.Profile.Name, Start: start, End: end}
	for _, c := range r.APIProbes[0].Log {
		if c.Time >= start && c.Time < end {
			out.APILog = append(out.APILog, c)
		}
	}
	for _, c := range r.Dataset.Changes[0] {
		if c.Time >= start && c.Time < end {
			out.ClientLo = append(out.ClientLo, c)
		}
	}
	return out
}

// ---------------------------------------------------------------- Fig 15

// Fig15Timing compares when multiplier changes land inside the 5-minute
// interval for the API stream vs the client stream.
type Fig15Timing struct {
	City   string
	API    *stats.CDF // offsets in seconds
	Client *stats.CDF
}

// Fig15UpdateTiming extracts change moments from both datastreams.
func Fig15UpdateTiming(r *CityRun) Fig15Timing {
	var apiM, cliM []float64
	for _, p := range r.APIProbes {
		apiM = append(apiM, measure.ChangeMoments(p.Log)...)
	}
	for _, log := range r.Dataset.Changes {
		cliM = append(cliM, measure.ChangeMoments(log)...)
	}
	return Fig15Timing{City: r.Profile.Name, API: stats.NewCDF(apiM), Client: stats.NewCDF(cliM)}
}

// ---------------------------------------------------------------- Figs 16/17

// Fig16Jitter summarizes multipliers served during jitter.
type Fig16Jitter struct {
	City string
	// During is the CDF of multipliers served during jitter events.
	During *stats.CDF
	// DropToOne is the fraction of events whose stale multiplier was 1.
	DropToOne float64
	// Reduced is the fraction of events where the stale value undercut
	// the interval's true multiplier.
	Reduced float64
	Events  int
}

// Fig16JitterMultipliers extracts jitter events and their multipliers.
func Fig16JitterMultipliers(r *CityRun) Fig16Jitter {
	events := measure.ExtractJitter(r.Dataset.Changes)
	var during []float64
	toOne, reduced := 0, 0
	for _, e := range events {
		during = append(during, e.During)
		if e.During == 1 {
			toOne++
		}
		if e.During < e.Base {
			reduced++
		}
	}
	out := Fig16Jitter{City: r.Profile.Name, During: stats.NewCDF(during), Events: len(events)}
	if len(events) > 0 {
		out.DropToOne = float64(toOne) / float64(len(events))
		out.Reduced = float64(reduced) / float64(len(events))
	}
	return out
}

// Fig17Simultaneity is the distribution of how many clients observe a
// jitter event at the same moment.
type Fig17Simultaneity struct {
	City string
	// FractionAlone is the share of events seen by exactly one client.
	FractionAlone float64
	Max           int
	Counts        *stats.CDF
	Events        int
}

// Fig17JitterSimultaneity reproduces Fig 17.
func Fig17JitterSimultaneity(r *CityRun) Fig17Simultaneity {
	events := measure.ExtractJitter(r.Dataset.Changes)
	counts := measure.SimultaneousJitter(events)
	out := Fig17Simultaneity{City: r.Profile.Name, Events: len(events)}
	if len(counts) == 0 {
		out.Counts = stats.NewCDF(nil)
		return out
	}
	alone := 0
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
		if c == 1 {
			alone++
		}
		if c > out.Max {
			out.Max = c
		}
	}
	out.FractionAlone = float64(alone) / float64(len(counts))
	out.Counts = stats.NewCDF(xs)
	return out
}

// FmtCDF renders a few representative quantiles of a CDF for reports and
// example output.
func FmtCDF(c *stats.CDF, qs ...float64) string {
	var parts []string
	for _, q := range qs {
		parts = append(parts, fmt.Sprintf("p%02.0f=%.2f", q*100, c.Quantile(q)))
	}
	return strings.Join(parts, " ")
}
