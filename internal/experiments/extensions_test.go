package experiments

import (
	"testing"

	"repro/internal/sim"
)

func TestExtCollusion(t *testing.T) {
	if testing.Short() {
		t.Skip("two backends")
	}
	c := ExtCollusion(sim.SanFrancisco(), 11)
	if c.Complied == 0 {
		t.Fatal("no colluders")
	}
	if !c.Induced {
		t.Error("collusion failed to lift surge")
	}
}

func TestExtWaitOut(t *testing.T) {
	_, s := sharedRuns(t)
	e := ExtWaitOut(s)
	if e.Wait5.Cases == 0 {
		t.Skip("no surge onsets in window")
	}
	// Waiting must help at least sometimes (most surges are short).
	if e.Wait5.ImprovedFrac() == 0 {
		t.Error("waiting 5 minutes never improved the price")
	}
	// Longer waits clear at least as many surges.
	if e.Wait15.Cases > 0 && e.Wait15.ClearedFrac() < e.Wait5.ClearedFrac()*0.8 {
		t.Errorf("wait-15 cleared %.2f, wait-5 cleared %.2f",
			e.Wait15.ClearedFrac(), e.Wait5.ClearedFrac())
	}
}

func TestExtMarketComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("two markets")
	}
	m := ExtMarketComparison(sim.SanFrancisco(), 5, 8)
	if m.SurgeMeanPrice < 1 || m.DriverSetMeanPrice < 0.7 {
		t.Errorf("price levels implausible: %+v", m)
	}
	// The driver-set market disperses prices across drivers at any
	// moment; surge is uniform per area but varies over time. Both must
	// show nonzero dispersion, and the driver-set market must actually
	// trade.
	if m.DriverSetPriceStd <= 0 {
		t.Error("driver-set market has no price dispersion")
	}
	if m.SurgeMeanEWT <= 0 || m.DriverSetMeanEWT <= 0 {
		t.Error("EWT not sampled")
	}
}

func TestExtFuzzRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("two campaigns")
	}
	f := ExtFuzzRobustness(sim.Manhattan(), 3, 2)
	// A 25 m perturbation must not materially change what the
	// methodology measures.
	if f.SupplyRatio < 0.9 || f.SupplyRatio > 1.1 {
		t.Errorf("supply ratio = %.3f, want ~1", f.SupplyRatio)
	}
	if f.DeathRatio < 0.75 || f.DeathRatio > 1.25 {
		t.Errorf("death ratio = %.3f, want ~1", f.DeathRatio)
	}
}

func TestExtSmoothing(t *testing.T) {
	if testing.Short() {
		t.Skip("two engines")
	}
	s := ExtSmoothing(sim.SanFrancisco(), 7, 10)
	if s.RawEpisodes == 0 {
		t.Fatal("no surge episodes")
	}
	if s.SmoothedVolatility >= s.RawVolatility {
		t.Errorf("smoothing did not cut volatility: %.1f vs %.1f",
			s.SmoothedVolatility, s.RawVolatility)
	}
	if s.SmoothedEpisodes >= s.RawEpisodes {
		t.Errorf("smoothing did not merge episodes: %d vs %d",
			s.SmoothedEpisodes, s.RawEpisodes)
	}
}
