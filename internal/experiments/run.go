// Package experiments contains one runner per table and figure of the
// paper's evaluation, regenerating the same rows and series from the
// simulated backend through the measurement pipeline. cmd/experiments and
// the root bench_test.go drive these runners.
//
// A single CityRun per city feeds every figure: it advances the backend
// tick by tick while simultaneously running the 43-client campaign
// (client datastream), four API probes (API datastream), the surge-area
// prober (Figs 18/19), and the per-client strategy sweeps (Figs 23/24) —
// mirroring how the paper's one measurement corpus backs all analyses.
package experiments

import (
	"fmt"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/surgemap"
	"repro/internal/transition"
)

// Options configures a CityRun.
type Options struct {
	Seed int64
	// Days of measurement (default 1).
	Days int
	// Hours, when > 0, overrides Days with a sub-day window (tests and
	// benches use this).
	Hours int
	// Jitter enables the April 2015 datastream (default true; Fig 13's
	// February line comes from the API probes, which never jitter).
	Jitter bool
	// SkipStrategy disables the per-interval strategy sweeps (they are
	// the most expensive part of the loop).
	SkipStrategy bool
	// SkipProber disables surge-area lattice probing.
	SkipProber bool
	// Workers is the simulation's phase-parallel tick worker count
	// (0 = GOMAXPROCS). Campaign results are identical for every value.
	Workers int
	// FleetScale multiplies each profile's driver and request targets
	// (see sim.CityProfile.Scale); 0 or 1 runs the calibrated size.
	FleetScale float64
	// Engine selects the pricing engine ("" or "mult2015" is the paper's
	// multiplicative surge; "additive", "withholding" are the alternative
	// regimes the audit methodology is run against).
	Engine string
}

// StrategyStats aggregates Figs 23/24 inputs for one client position.
type StrategyStats struct {
	Scans    int
	Feasible int
	Savings  []float64 // multiplier reduction when feasible
	WalkMins []float64 // walking minutes when feasible
}

// CityRun is one city's complete measurement campaign.
type CityRun struct {
	Profile   *sim.CityProfile
	Svc       *api.Service
	Campaign  *client.Campaign
	Dataset   *measure.Dataset
	Trans     *transition.Sink
	APIProbes []*measure.APIProbe // one per surge area
	Prober    *surgemap.Prober
	Strategy  []StrategyStats // per campaign client
	Opts      Options

	// Truth tracks operator-side ground truth the measurement cannot
	// see, used to contrast measured results with reality (Fig 22's New
	// shares are distorted by 8-car visibility saturation).
	Truth TruthNew

	End int64
}

// TruthNew accumulates, per surge condition and area, the share of new
// driver logons landing in the area — computed from the simulator
// directly, not from pingClient observations.
type TruthNew struct {
	counts [2][]float64
	denom  [2][]float64
}

// Share returns the ground-truth share of city-wide logons landing in
// the area under the condition (0 = equal surge, 1 = area surging ≥ 0.2
// above all neighbors).
func (t *TruthNew) Share(cond transition.Condition, area int) float64 {
	c := int(cond)
	if c < 0 || c > 1 || area >= len(t.denom[c]) || t.denom[c][area] == 0 {
		return 0
	}
	return t.counts[c][area] / t.denom[c][area]
}

// truthTracker observes driver logons per interval inside RunCity's loop.
type truthTracker struct {
	run   *CityRun
	seen  map[int64]bool
	prevM []float64
}

func newTruthTracker(run *CityRun, areas int) *truthTracker {
	tt := &truthTracker{run: run, seen: make(map[int64]bool), prevM: make([]float64, areas)}
	for i := range tt.prevM {
		tt.prevM[i] = 1
	}
	for c := 0; c < 2; c++ {
		run.Truth.counts[c] = make([]float64, areas)
		run.Truth.denom[c] = make([]float64, areas)
	}
	return tt
}

// tick runs at each 5-minute boundary: counts this interval's new driver
// sessions by area, conditions on the previous interval's multipliers.
func (tt *truthTracker) tick() {
	w := tt.run.Svc.World()
	e := tt.run.Svc.Engine()
	areas := w.Areas()
	n := len(areas)
	newBy := make([]float64, n)
	var total float64
	w.EachDriver(func(d *sim.Driver) {
		if tt.seen[d.ID] {
			return
		}
		tt.seen[d.ID] = true
		if a := sim.AreaOf(areas, d.Pos); a >= 0 {
			newBy[a]++
			total++
		}
	})
	equal := true
	for a := 1; a < n; a++ {
		if tt.prevM[a] != tt.prevM[0] {
			equal = false
			break
		}
	}
	for a := 0; a < n && total > 0; a++ {
		cond := -1
		if equal {
			cond = 0
		} else {
			above := true
			for b := 0; b < n; b++ {
				if b != a && tt.prevM[a] < tt.prevM[b]+transition.SurgeMargin {
					above = false
					break
				}
			}
			if above {
				cond = 1
			}
		}
		if cond >= 0 {
			tt.run.Truth.counts[cond][a] += newBy[a]
			tt.run.Truth.denom[cond][a] += total
		}
	}
	for a := 0; a < n; a++ {
		tt.prevM[a] = e.CurrentMultiplier(a)
	}
}

// RunCity executes the full campaign for a profile.
func RunCity(profile *sim.CityProfile, opts Options) *CityRun {
	if opts.FleetScale > 0 {
		profile = profile.Scale(opts.FleetScale)
	}
	if opts.Days <= 0 {
		opts.Days = 1
	}
	end := int64(opts.Days) * sim.SecondsPerDay
	if opts.Hours > 0 {
		end = int64(opts.Hours) * 3600
	}

	svc, err := api.NewBackendEngine(profile, opts.Seed, opts.Jitter, opts.Workers, opts.Engine)
	if err != nil {
		panic(err) // unknown engine names are caught at flag-parse time
	}
	pts := client.GridLayout(profile.MeasureRect, profile.ClientSpacing, client.NumClients)
	camp := client.NewCampaign(svc, svc.World().Projection(), pts)
	camp.RegisterAll(svc)

	areas := profile.SurgeAreas()
	clientAreas := make([]int, len(pts))
	for i, p := range pts {
		clientAreas[i] = sim.AreaOf(areas, p)
	}
	ds := measure.NewDataset(measure.Config{
		Profile:     profile,
		Start:       0,
		End:         end,
		ClientAreas: clientAreas,
	}, len(pts))
	camp.AddSink(ds)

	trans := transition.NewSink(profile, pts)
	camp.AddSink(trans)

	run := &CityRun{
		Profile:  profile,
		Svc:      svc,
		Campaign: camp,
		Dataset:  ds,
		Trans:    trans,
		Opts:     opts,
		End:      end,
	}

	// One API probe per surge area, at a point inside the measurement
	// rect (area centroids can fall in the margin for edge areas).
	proj := svc.World().Projection()
	for a := range areas {
		id := fmt.Sprintf("api-probe-%d", a)
		svc.Register(id)
		pt := probePoint(profile, areas[a].Centroid())
		run.APIProbes = append(run.APIProbes, measure.NewAPIProbe(svc, id, proj.ToLatLng(pt)))
	}

	if !opts.SkipProber {
		// In-process registration cannot fail; the error path exists for
		// remote probers.
		run.Prober, _ = surgemap.NewProber(svc, svc, proj, profile.MeasureRect, proberSpacing(profile))
	}

	var advisors []*strategy.Advisor
	if !opts.SkipStrategy {
		run.Strategy = make([]StrategyStats, len(pts))
		for i := range pts {
			id := fmt.Sprintf("walker-%02d", i)
			svc.Register(id)
			advisors = append(advisors, strategy.NewAdvisor(svc, id, profile))
		}
	}

	tt := newTruthTracker(run, len(areas))

	// Main loop: tick, ping, poll; mid-interval, probe and advise.
	for svc.Now() < end {
		svc.Step()
		camp.Round()
		for _, p := range run.APIProbes {
			p.Poll()
		}
		if svc.Now()%measure.Interval == 0 {
			tt.tick()
		}
		if svc.Now()%measure.Interval == 150 {
			if run.Prober != nil {
				// Best effort: a transient rate limit drops one sample.
				_ = run.Prober.SampleOnce()
			}
			for i := range advisors {
				adv, err := advisors[i].Advise(pts[i])
				if err != nil {
					continue
				}
				st := &run.Strategy[i]
				st.Scans++
				if adv.Best != nil {
					st.Feasible++
					st.Savings = append(st.Savings, adv.Savings())
					st.WalkMins = append(st.WalkMins, adv.Best.WalkSeconds/60)
				}
			}
		}
	}
	ds.Close()
	trans.Close()
	return run
}

// probePoint clamps an area centroid into the measurement rect.
func probePoint(p *sim.CityProfile, c geo.Point) geo.Point {
	r := p.MeasureRect
	inset := geo.NewRect(
		geo.Point{X: r.Min.X + 100, Y: r.Min.Y + 100},
		geo.Point{X: r.Max.X - 100, Y: r.Max.Y - 100},
	)
	return inset.Clamp(c)
}

// proberSpacing picks the lattice pitch for surge-area inference: fine
// enough to resolve the partition, coarse enough to stay cheap.
func proberSpacing(p *sim.CityProfile) float64 {
	if p.MeasureRect.Width() > 3000 {
		return 450
	}
	return 300
}
