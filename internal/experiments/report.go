package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transition"
)

// Report runs every experiment and renders the paper-vs-measured rows to
// w in Markdown. It is the engine behind cmd/experiments and
// EXPERIMENTS.md.
func Report(w io.Writer, opts Options) {
	fmt.Fprintf(w, "# Experiments: paper vs. measured\n\n")
	fmt.Fprintf(w, "Configuration: %d day(s)/city, seed %d, jitter=%v.\n\n",
		maxInt(opts.Days, 1), opts.Seed, opts.Jitter)

	// The two cities are independent; run them in parallel.
	var mhtn, sf *CityRun
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); mhtn = RunCity(sim.Manhattan(), opts) }()
	go func() { defer wg.Done(); sf = RunCity(sim.SanFrancisco(), opts) }()
	wg.Wait()
	runs := []*CityRun{mhtn, sf}

	reportFig2(w, opts.Seed)
	reportFig4(w, opts.Seed)
	reportFig7(w, runs)
	reportFig8(w, runs)
	reportFig9_10(w, runs)
	reportFig11(w, runs)
	reportFig12(w, runs)
	reportFig13(w, runs)
	reportFig14(w, sf)
	reportFig15(w, runs)
	reportFig16_17(w, runs)
	reportFig18_19(w, runs)
	reportFig20_21(w, runs)
	reportTable1(w, runs)
	reportFig22(w, runs)
	reportFig23_24(w, runs)
	reportExtensions(w, opts, runs)
}

func reportExtensions(w io.Writer, opts Options, runs []*CityRun) {
	fmt.Fprintf(w, "## Extensions — the §8 discussion, made executable\n\n")
	fmt.Fprintf(w, "These experiments go beyond the paper's measurements: the authors could only\nspeculate about them because they did not control the system. This reproduction does.\n\n")

	fmt.Fprintf(w, "### Driver collusion (paper: the black box \"is vulnerable to exploitation ... by colluding groups of drivers\")\n\n")
	fmt.Fprintf(w, "A ring logs off together for 30 minutes at evening rush, then returns to harvest.\n\n")
	fmt.Fprintf(w, "| city | drivers dark | peak surge lift | area fare lift after return |\n|---|---|---|---|\n")
	for _, r := range runs {
		c := ExtCollusion(r.Profile, opts.Seed)
		fmt.Fprintf(w, "| %s | %d | +%.1f | %+.0f USD/h |\n", c.City, c.Complied, c.PeakLift, c.FareLift)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "### Waiting out the surge (paper §5.2: \"savvy Uber passengers should wait-out surges\")\n\n")
	fmt.Fprintf(w, "| city | onsets | wait 5 min: improved / cleared | wait 15 min: improved / cleared | mean multiplier onset → after 5 min |\n|---|---|---|---|---|\n")
	for _, r := range runs {
		e := ExtWaitOut(r)
		fmt.Fprintf(w, "| %s | %d | %.0f%% / %.0f%% | %.0f%% / %.0f%% | %.2f → %.2f |\n",
			e.City, e.Wait5.Cases,
			e.Wait5.ImprovedFrac()*100, e.Wait5.ClearedFrac()*100,
			e.Wait15.ImprovedFrac()*100, e.Wait15.ClearedFrac()*100,
			e.Wait5.MeanOnset, e.Wait5.MeanAfter)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "### Surge vs. driver-set pricing (paper §8: Sidecar's \"free-market approach\")\n\n")
	fmt.Fprintf(w, "With the slack Uber keeps in supply, the free market clears *below* the base fare\n(competition drives idle drivers' asks down) and prices almost nobody out; the surge\nmarket holds the base price and rations by multiplier instead.\n\n")
	fmt.Fprintf(w, "| city | market | mean price | price σ | unmet | priced out | mean EWT (min) |\n|---|---|---|---|---|---|---|\n")
	for _, r := range runs {
		m := ExtMarketComparison(r.Profile, opts.Seed, 12)
		fmt.Fprintf(w, "| %s | surge | %.2f | %.2f | %.1f%% | %.1f%% | %.1f |\n",
			m.City, m.SurgeMeanPrice, m.SurgePriceStd, m.SurgeUnmetFrac*100, m.SurgePricedOut*100, m.SurgeMeanEWT)
		fmt.Fprintf(w, "| %s | driver-set | %.2f | %.2f | %.1f%% | %.1f%% | %.1f |\n",
			m.City, m.DriverSetMeanPrice, m.DriverSetPriceStd, m.DriverSetUnmetFrac*100, m.DriverSetPricedOut*100, m.DriverSetMeanEWT)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "### Robustness to location perturbation (paper §3.3: positions \"may be slightly perturbed\")\n\n")
	fmt.Fprintf(w, "| city | fuzz | measured supply ratio | measured deaths ratio |\n|---|---|---|---|\n")
	for _, r := range runs {
		f := ExtFuzzRobustness(r.Profile, opts.Seed, 4)
		fmt.Fprintf(w, "| %s | 25 m | %.3f | %.3f |\n", f.City, f.SupplyRatio, f.DeathRatio)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "### Smoothed surge (paper §8: \"update surge prices more smoothly ... a weighted moving average\")\n\n")
	fmt.Fprintf(w, "Smoothing delivers what the paper asks for — far less oscillation and almost no\nsub-5-minute flicker — but at a price the paper did not anticipate: the EWMA decays\nslowly toward 1, so mild surge becomes near-permanent (see the surged-fraction column).\n\n")
	fmt.Fprintf(w, "| city | engine | Σ\\|Δm\\| | episodes | surged fraction |\n|---|---|---|---|---|\n")
	for _, r := range runs {
		s := ExtSmoothing(r.Profile, opts.Seed, 12)
		fmt.Fprintf(w, "| %s | stock | %.1f | %d | %.1f%% |\n", s.City, s.RawVolatility, s.RawEpisodes, s.RawSurgedFrac*100)
		fmt.Fprintf(w, "| %s | smoothed (0.6) | %.1f | %d | %.1f%% |\n", s.City, s.SmoothedVolatility, s.SmoothedEpisodes, s.SmoothedSurgedFrac*100)
	}
	fmt.Fprintln(w)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func reportFig2(w io.Writer, seed int64) {
	fmt.Fprintf(w, "## Fig 2 — Visibility radius vs. time of day\n\n")
	fmt.Fprintf(w, "Paper: radius varies diurnally; averages 247 m (Manhattan) and 387 m (SF), larger at night.\n\n")
	rows := Fig2VisibilityRadius(seed, []int{0, 4, 8, 12, 16, 20})
	fmt.Fprintf(w, "| city | hour | radius (m) |\n|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(w, "| %s | %02d:00 | %.0f |\n", r.City, r.Hour, r.RadiusM)
	}
	fmt.Fprintln(w)
}

func reportFig4(w io.Writer, seed int64) {
	fmt.Fprintf(w, "## Fig 4 — Taxi ground-truth validation\n\n")
	fmt.Fprintf(w, "Paper: 172 clients capture 97%% of cars and 95%% of deaths.\n\n")
	res := Fig4TaxiValidation(seed, 1500, 8, 16)
	fmt.Fprintf(w, "- supply capture: **%.1f%%** (measured/truth)\n", res.SupplyCapture*100)
	fmt.Fprintf(w, "- death capture:  **%.1f%%**\n", res.DeathCapture*100)
	fmt.Fprintf(w, "- measured-vs-truth supply correlation: %.3f\n\n", res.SupplyCorrelation)
}

func reportFig7(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Figs 5-7 — Data cleaning and car lifespans\n\n")
	fmt.Fprintf(w, "Paper (§4.1): short-lived cars near the visibility boundary are filtered before analysis; after cleaning, ~90%% of low-cost Ubers live a few hours and luxury cars live longer.\n\n")
	fmt.Fprintf(w, "| city | distinct car IDs | short-lived filtered | median observations/car |\n|---|---|---|---|\n")
	for _, r := range runs {
		c := r.Dataset.Cleaning()
		med := 0.0
		if len(c.ObsPerCar) > 0 {
			med = stats.NewCDF(c.ObsPerCar).Median()
		}
		fmt.Fprintf(w, "| %s | %d | %d (%.1f%%) | %.0f |\n",
			r.Profile.Name, c.TotalCars, c.ShortLived,
			float64(c.ShortLived)/float64(maxInt(c.TotalCars, 1))*100, med)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "| city | group | n | median (h) | p90 (h) |\n|---|---|---|---|---|\n")
	for _, g := range Fig7Lifespans(runs...) {
		if g.N == 0 {
			continue
		}
		fmt.Fprintf(w, "| %s | %s | %d | %.2f | %.2f |\n",
			g.City, g.Group, g.N, g.Hours.Median(), g.Hours.Quantile(0.9))
	}
	fmt.Fprintln(w)
}

func reportFig8(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Fig 8 — Supply, demand, surge, EWT over time\n\n")
	fmt.Fprintf(w, "Paper: diurnal peaks; SF has ~58%% more Ubers; SF surges more and higher; EWT ~3 min in both.\n\n")
	fmt.Fprintf(w, "| city | mean UberX supply / 5 min | surged fraction | mean surge | mean EWT (min) |\n|---|---|---|---|---|\n")
	for _, r := range runs {
		s := Summarize(r)
		fmt.Fprintf(w, "| %s | %.0f | %.1f%% | %.3f | %.2f |\n",
			r.Profile.Name, s.MeanSupplyX, s.SurgedFrac*100, s.MeanSurge, s.MeanEWTMin)
	}
	fmt.Fprintln(w)
	for _, r := range runs {
		fs := Fig8TimeSeries(r)
		hourly := HourlyMean(fs.Supply[core.UberX])
		surgeH := HourlyMean(fs.Surge)
		fmt.Fprintf(w, "%s hourly UberX supply / surge:\n\n", r.Profile.Name)
		fmt.Fprintf(w, "| hour | supply | surge |\n|---|---|---|\n")
		for h := 0; h < 24; h += 3 {
			fmt.Fprintf(w, "| %02d | %.0f | %.2f |\n", h, hourly[h], surgeH[h])
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%s UberX supply per 5-min interval:\n\n```\n%s```\n\n",
			r.Profile.Name, chart.Line(fs.Supply[core.UberX].Values, 72, 10))
		fmt.Fprintf(w, "%s mean surge multiplier per interval:\n\n```\n%s```\n\n",
			r.Profile.Name, chart.Line(fs.Surge.Values, 72, 10))
	}
}

func reportFig9_10(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Figs 9/10 — Spatial heatmaps\n\n")
	fmt.Fprintf(w, "Paper: cars skew toward commercial/tourist hotspots; EWT is not simply inverse density.\n\n")
	for _, r := range runs {
		cells := Fig9_10Heatmaps(r)
		density := HeatmapASCII(cells, func(c HeatCell) float64 { return c.CarsPerDay })
		ewt := HeatmapASCII(cells, func(c HeatCell) float64 { return c.MeanEWTMin })
		fmt.Fprintf(w, "%s cars/day (darker = more):\n\n```\n%s```\n\n%s mean EWT (darker = longer):\n\n```\n%s```\n\n",
			r.Profile.Name, density, r.Profile.Name, ewt)
		sort.Slice(cells, func(i, j int) bool { return cells[i].CarsPerDay > cells[j].CarsPerDay })
		fmt.Fprintf(w, "%s — densest cell %.0f cars/day at (%.0f,%.0f); sparsest %.0f at (%.0f,%.0f)",
			r.Profile.Name,
			cells[0].CarsPerDay, cells[0].Pos.X, cells[0].Pos.Y,
			cells[len(cells)-1].CarsPerDay, cells[len(cells)-1].Pos.X, cells[len(cells)-1].Pos.Y)
		// Per-square CIs (the paper reports the min and max): only
		// meaningful with 2+ days of data.
		minCI, maxCI := math.Inf(1), math.Inf(-1)
		for _, c := range cells {
			if math.IsNaN(c.CarsCI) {
				continue
			}
			minCI = math.Min(minCI, c.CarsCI)
			maxCI = math.Max(maxCI, c.CarsCI)
		}
		if !math.IsInf(minCI, 1) {
			fmt.Fprintf(w, "; per-square 95%% CI ±%.0f to ±%.0f", minCI, maxCI)
		}
		fmt.Fprintf(w, "\n\n")
	}
}

func reportFig11(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Fig 11 — EWT distribution\n\n")
	fmt.Fprintf(w, "Paper: 87%% of waits ≤ 4 minutes; tail up to 43 minutes.\n\n")
	fmt.Fprintf(w, "| city | P(EWT ≤ 4 min) | median | p99 | max |\n|---|---|---|---|---|\n")
	for _, r := range runs {
		c := Fig11EWT(r)
		fmt.Fprintf(w, "| %s | %.1f%% | %.2f | %.2f | %.2f |\n",
			r.Profile.Name, c.At(4)*100, c.Median(), c.Quantile(0.99), c.Quantile(1))
	}
	fmt.Fprintln(w)
	for _, r := range runs {
		c := Fig11EWT(r)
		fmt.Fprintf(w, "%s EWT quantile curve (x = P, y = minutes):\n\n```\n%s```\n\n",
			r.Profile.Name, chart.CDF(c.Quantile, 60, 8))
	}
}

func reportFig12(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Fig 12 — Surge multiplier distribution\n\n")
	fmt.Fprintf(w, "Paper: no surge 86%% of the time in Manhattan vs 43%% in SF; maxima 2.8 vs 4.1; surges mostly ≤ 1.5.\n\n")
	fmt.Fprintf(w, "| city | P(surge = 1) | P(surge ≤ 1.5) | max |\n|---|---|---|---|\n")
	for _, r := range runs {
		c := Fig12Surge(r)
		fmt.Fprintf(w, "| %s | %.1f%% | %.1f%% | %.1f |\n",
			r.Profile.Name, c.At(1)*100, c.At(1.5)*100, c.Quantile(1))
	}
	fmt.Fprintln(w)
}

func reportFig13(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Fig 13 — Surge durations\n\n")
	fmt.Fprintf(w, "Paper: API/February streams step in 5-minute multiples (~40%% of surges last 5 min); the April client stream shows 40%% of surges under 1 minute (jitter).\n\n")
	fmt.Fprintf(w, "| city | stream | n | P(<1 min) | P(≤5 min) | P(≤10 min) | P(>20 min) |\n|---|---|---|---|---|---|---|\n")
	for _, r := range runs {
		d := Fig13SurgeDurations(r)
		for _, s := range []struct {
			name string
			cdf  interface {
				At(float64) float64
				Len() int
			}
		}{{"api", d.API}, {"client", d.Client}} {
			if s.cdf.Len() == 0 {
				continue
			}
			fmt.Fprintf(w, "| %s | %s | %d | %.1f%% | %.1f%% | %.1f%% | %.1f%% |\n",
				d.City, s.name, s.cdf.Len(),
				s.cdf.At(59)*100, s.cdf.At(300)*100, s.cdf.At(600)*100,
				(1-s.cdf.At(1200))*100)
		}
	}
	fmt.Fprintln(w)
}

func reportFig14(w io.Writer, r *CityRun) {
	fmt.Fprintf(w, "## Fig 14 — Surge over time: API vs client stream\n\n")
	fmt.Fprintf(w, "Paper: API changes on clean 5-minute boundaries; the client stream shows 20-30 s jitter dips.\n\n")
	// Pick the densest 25-minute client window.
	start := bestWindow(r, 1500)
	tl := Fig14SurgeTimeline(r, start, start+1500)
	fmt.Fprintf(w, "%s, window [%d, %d):\n\n", tl.City, tl.Start, tl.End)
	fmt.Fprintf(w, "API changes: ")
	for _, c := range tl.APILog {
		fmt.Fprintf(w, "t=%d %.1f→%.1f  ", c.Time, c.From, c.To)
	}
	fmt.Fprintf(w, "\nClient changes: ")
	for _, c := range tl.ClientLo {
		fmt.Fprintf(w, "t=%d %.1f→%.1f  ", c.Time, c.From, c.To)
	}
	fmt.Fprintf(w, "\n\n")
}

// bestWindow finds the window with the most client-0 changes.
func bestWindow(r *CityRun, width int64) int64 {
	log := r.Dataset.Changes[0]
	best, bestN := int64(0), -1
	for _, c := range log {
		start := c.Time
		n := 0
		for _, d := range log {
			if d.Time >= start && d.Time < start+width {
				n++
			}
		}
		if n > bestN {
			best, bestN = start, n
		}
	}
	return best
}

func reportFig15(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Fig 15 — Moment of surge change within each interval\n\n")
	fmt.Fprintf(w, "Paper: API updates land in a ~35 s band; April client updates spread over ~2 min; jitter is uniform.\n\n")
	fmt.Fprintf(w, "| city | stream | n | p5 (s) | p95 (s) | spread (s) |\n|---|---|---|---|---|---|\n")
	for _, r := range runs {
		t := Fig15UpdateTiming(r)
		for _, s := range []struct {
			name string
			cdf  interface {
				Quantile(float64) float64
				Len() int
			}
		}{{"api", t.API}, {"client", t.Client}} {
			if s.cdf.Len() == 0 {
				continue
			}
			p5, p95 := s.cdf.Quantile(0.05), s.cdf.Quantile(0.95)
			fmt.Fprintf(w, "| %s | %s | %d | %.0f | %.0f | %.0f |\n",
				t.City, s.name, s.cdf.Len(), p5, p95, p95-p5)
		}
	}
	fmt.Fprintln(w)
}

func reportFig16_17(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Figs 16/17 — Jitter multipliers and simultaneity\n\n")
	fmt.Fprintf(w, "Paper: jitter serves the previous interval's multiplier (30-50%% of events drop to 1; jitter usually lowers the price); ~90%% of events are seen by a single client, never more than 5.\n\n")
	fmt.Fprintf(w, "| city | events | drop-to-1 | price-reduced | alone | max simultaneous |\n|---|---|---|---|---|---|\n")
	for _, r := range runs {
		j := Fig16JitterMultipliers(r)
		s := Fig17JitterSimultaneity(r)
		fmt.Fprintf(w, "| %s | %d | %.1f%% | %.1f%% | %.1f%% | %d |\n",
			j.City, j.Events, j.DropToOne*100, j.Reduced*100, s.FractionAlone*100, s.Max)
	}
	fmt.Fprintln(w)
}

func reportFig18_19(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Figs 18/19 — Surge areas recovered from lock-step multipliers\n\n")
	fmt.Fprintf(w, "Paper: probing the API at adjacent locations recovers Uber's hand-drawn surge-area partition (4 areas per measured region).\n\n")
	fmt.Fprintf(w, "| city | lattice points | inferred clusters | true areas | accuracy |\n|---|---|---|---|---|\n")
	for _, r := range runs {
		a := Fig18_19SurgeAreas(r)
		if a.Map == nil {
			fmt.Fprintf(w, "| %s | - | - | %d | prober disabled |\n", a.City, a.TrueAreas)
			continue
		}
		fmt.Fprintf(w, "| %s | %d | %d | %d | %.1f%% |\n",
			a.City, len(a.Map.Points), a.Map.NumClusters, a.TrueAreas, a.Accuracy*100)
	}
	fmt.Fprintln(w)
	for _, r := range runs {
		a := Fig18_19SurgeAreas(r)
		if a.Map == nil {
			continue
		}
		fmt.Fprintf(w, "%s recovered partition (one label per lattice point, north up):\n\n```\n%s```\n\n",
			a.City, a.Map.ASCII())
	}
}

func reportFig20_21(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Figs 20/21 — Cross-correlation with surge\n\n")
	fmt.Fprintf(w, "Paper: (supply − demand) correlates negatively with surge, EWT positively; both strongest at Δt = 0.\n\n")
	fmt.Fprintf(w, "| city | feature | r at Δt=0 | peak r | peak lag (min) |\n|---|---|---|---|---|\n")
	for _, r := range runs {
		sd := Fig20SupplyDemandCorrelation(r, 60)
		ew := Fig21EWTCorrelation(r, 60)
		fmt.Fprintf(w, "| %s | supply − demand | %.3f | %.3f | %d |\n",
			r.Profile.Name, sd.RAtZero, sd.PeakR, sd.PeakLag)
		fmt.Fprintf(w, "| %s | EWT | %.3f | %.3f | %d |\n",
			r.Profile.Name, ew.RAtZero, ew.PeakR, ew.PeakLag)
	}
	fmt.Fprintln(w)
}

func reportTable1(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Table 1 — Forecasting surge with linear regression\n\n")
	fmt.Fprintf(w, "Paper: R² ≈ 0.37-0.57 at best — surge is not usefully forecastable from observable features.\n\n")
	fmt.Fprintf(w, "| city | model | n | θ_sd-diff | θ_ewt | θ_prev-surge | R² |\n|---|---|---|---|---|---|---|\n")
	for _, r := range runs {
		row, err := Table1Forecasting(r)
		if err != nil {
			fmt.Fprintf(w, "| %s | - | - | - | - | - | fit failed: %v |\n", r.Profile.Name, err)
			continue
		}
		t := row.Table
		fmt.Fprintf(w, "| %s | Raw | %d | %.4f | %.4f | %.3f | %.3f |\n",
			row.City, t.Raw.N, t.Raw.ThetaSDDiff, t.Raw.ThetaEWT, t.Raw.ThetaPrevSurge, t.Raw.R2)
		fmt.Fprintf(w, "| %s | Threshold | %d | %.4f | %.4f | %.3f | %.3f |\n",
			row.City, t.Threshold.N, t.Threshold.ThetaSDDiff, t.Threshold.ThetaEWT, t.Threshold.ThetaPrevSurge, t.Threshold.R2)
		fmt.Fprintf(w, "| %s | Rush | %d | %.4f | %.4f | %.3f | %.3f |\n",
			row.City, t.Rush.N, t.Rush.ThetaSDDiff, t.Rush.ThetaEWT, t.Rush.ThetaPrevSurge, t.Rush.R2)
	}
	fmt.Fprintln(w)
}

func reportFig22(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Fig 22 — Driver transitions under surge\n\n")
	fmt.Fprintf(w, "Paper: New ↑ slightly (≈ +3.7 pp avg) in surging areas; Dying ↓; Move-out ↑.\n\n")
	fmt.Fprintf(w, "| city | area | state | equal | surging | Δ (pp) |\n|---|---|---|---|---|---|\n")
	for _, r := range runs {
		for _, c := range Fig22Transitions(r) {
			if c.SurgeIntervals < 3 {
				continue // too few surging intervals to compare
			}
			fmt.Fprintf(w, "| %s | %d | %s | %.1f%% | %.1f%% | %+.1f |\n",
				c.City, c.Area, c.State, c.EqualShare*100, c.SurgeShare*100,
				(c.SurgeShare-c.EqualShare)*100)
		}
	}
	fmt.Fprintln(w)
	// The paper's headline: the New share rises ~3.7 pp on average across
	// comparable areas; Dying falls.
	fmt.Fprintf(w, "Average Δ across comparable areas:\n\n| city | New Δ (pp) | Dying Δ (pp) | Out Δ (pp) |\n|---|---|---|---|\n")
	for _, r := range runs {
		var dNew, dDying, dOut float64
		n := 0
		for _, c := range Fig22Transitions(r) {
			if c.SurgeIntervals < 3 {
				continue
			}
			switch c.State {
			case transition.StateNew:
				dNew += (c.SurgeShare - c.EqualShare) * 100
				n++
			case transition.StateDying:
				dDying += (c.SurgeShare - c.EqualShare) * 100
			case transition.StateOut:
				dOut += (c.SurgeShare - c.EqualShare) * 100
			}
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(w, "| %s | %+.1f | %+.1f | %+.1f |\n",
			r.Profile.Name, dNew/float64(n), dDying/float64(n), dOut/float64(n))
	}
	fmt.Fprintln(w)
	// A reproduction-only insight: the simulator's ground truth shows new
	// drivers flock to surging areas much more strongly than the measured
	// "New" shares suggest. The 8-nearest-car cap saturates in surging
	// areas (suppressed demand piles up idle cars), hiding fresh logons
	// from the measurement — a methodology limitation the paper's taxi
	// validation could not expose, because the taxi clients were packed
	// three times denser.
	fmt.Fprintf(w, "Ground truth (driver logons by area, visible only to the operator):\n\n")
	fmt.Fprintf(w, "| city | area | New share, equal | New share, surging | Δ (pp) |\n|---|---|---|---|---|\n")
	for _, r := range runs {
		for a := 0; a < r.Trans.NumAreas(); a++ {
			if r.Trans.Intervals(transition.CondSurging, a) < 3 {
				continue
			}
			eq := r.Truth.Share(transition.CondEqual, a)
			sg := r.Truth.Share(transition.CondSurging, a)
			fmt.Fprintf(w, "| %s | %d | %.1f%% | %.1f%% | %+.1f |\n",
				r.Profile.Name, a, eq*100, sg*100, (sg-eq)*100)
		}
	}
	fmt.Fprintln(w)
}

func reportFig23_24(w io.Writer, runs []*CityRun) {
	fmt.Fprintf(w, "## Figs 23/24 — Avoiding surge by walking to an adjacent area\n\n")
	fmt.Fprintf(w, "Paper: feasible 10-20%% of the time around Times Square, ~2%% in SF; savings ≥ 0.5 in >50%% of cases; walks ≤ 7-9 min.\n\n")
	fmt.Fprintf(w, "| city | best client feasibility | median feasibility | feasible cases | median savings | median walk (min) | max walk |\n|---|---|---|---|---|---|---|\n")
	for _, r := range runs {
		if len(r.Strategy) == 0 {
			fmt.Fprintf(w, "| %s | strategy sweep disabled | | | | | |\n", r.Profile.Name)
			continue
		}
		cl := Fig23AvoidanceFeasibility(r)
		var fr []float64
		for _, c := range cl {
			fr = append(fr, c.Fraction)
		}
		sort.Float64s(fr)
		sv := Fig24AvoidanceSavings(r)
		medS, medW, maxW := 0.0, 0.0, 0.0
		if sv.N > 0 {
			medS = sv.Savings.Median()
			medW = sv.WalkMins.Median()
			maxW = sv.WalkMins.Quantile(1)
		}
		fmt.Fprintf(w, "| %s | %.1f%% | %.1f%% | %d | %.2f | %.1f | %.1f |\n",
			r.Profile.Name, fr[len(fr)-1]*100, fr[len(fr)/2]*100, sv.N, medS, medW, maxW)
	}
	fmt.Fprintln(w)
}
