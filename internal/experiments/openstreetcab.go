// The OpenStreetCab scenario (§6 closing argument): two ride services —
// the Uber backend and an app-hailed taxi fleet — operate over the SAME
// street network, so one fleet's trips congest the other's routes, while
// a price-comparison client queries both public APIs and books whichever
// is cheaper. This runner wires two worlds onto one road.Network (loads
// tallied by both, committed once per tick by the harness), fronts each
// with the full API service, and drives a strategy.PriceComparison
// client at fixed probe points every five minutes.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/road"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/surge"
)

// OpenStreetCabOptions configures the two-service run.
type OpenStreetCabOptions struct {
	Seed  int64
	Hours int // simulated hours starting 17:00 (default 1)
	// TaxiShare sizes the taxi fleet relative to the Uber fleet
	// (default 1: equal fleets; midtown reality is nearer 10).
	TaxiShare float64
	Workers   int
}

// FleetResult is one service's side of the scoreboard.
type FleetResult struct {
	Name       string
	Pickups    int64
	Dropoffs   int64
	FareVolume float64
	Wins       int // comparison queries this service won on price
}

// OpenStreetCabResult is the outcome of a two-service run.
type OpenStreetCabResult struct {
	Uber, Taxi FleetResult
	Queries    int     // comparison rounds with both services quoting
	Ties       int     // rounds both services quoted the same price
	MeanSaving float64 // mean USD saved by booking the cheaper quote
	PeakFactor float64 // worst congestion factor reached on any edge
}

// scoreRound credits one comparison round: an exact price tie goes to
// the Ties column (the first-listed service didn't actually win it),
// otherwise the cheaper service's Wins.
func (res *OpenStreetCabResult) scoreRound(c *strategy.Comparison) {
	if c.CheapestTied() {
		res.Ties++
		return
	}
	switch c.CheapestQuote().Service {
	case "uber":
		res.Uber.Wins++
	case "taxi":
		res.Taxi.Wins++
	}
}

// RunOpenStreetCab executes the scenario: shared streets, two fleets,
// one comparison shopper.
func RunOpenStreetCab(opts OpenStreetCabOptions) *OpenStreetCabResult {
	if opts.Hours <= 0 {
		opts.Hours = 1
	}
	if opts.TaxiShare <= 0 {
		opts.TaxiShare = 1
	}
	profile := sim.Manhattan()
	profile.RoadNetwork = true
	taxiProfile := profile.TaxiCity(opts.TaxiShare)
	net := road.ForProfile(profile.Name, profile.Region)

	const start = 17 * 3600 // evening rush: both fleets busy from tick one
	uberW := sim.NewWorld(sim.Config{
		Profile: profile, Seed: opts.Seed, StartTime: start,
		Workers: opts.Workers, Road: net, RoadShared: true,
	})
	taxiW := sim.NewWorld(sim.Config{
		Profile: taxiProfile, Seed: opts.Seed + 1, StartTime: start,
		Workers: opts.Workers, Road: net, RoadShared: true,
	})
	uberSvc := api.NewService(uberW, surge.New(uberW, surge.Config{Params: profile.Surge, Seed: opts.Seed}))
	taxiSvc := api.NewService(taxiW, surge.New(taxiW, surge.Config{Params: taxiProfile.Surge, Seed: opts.Seed + 1}))
	uberSvc.Register("opencab")
	taxiSvc.Register("opencab")

	pc := &strategy.PriceComparison{Services: []strategy.ServiceEntry{
		{Name: "uber", Svc: uberSvc, ClientID: "opencab", Product: core.UberX},
		{Name: "taxi", Svc: taxiSvc, ClientID: "opencab", Product: core.UberT},
	}}

	// Probe pickups around midtown, inside the measurement rect.
	proj := uberW.Projection()
	probes := []geo.Point{{}, {X: -700, Y: 500}, {X: 900, Y: -600}}

	res := &OpenStreetCabResult{
		Uber: FleetResult{Name: "uber"},
		Taxi: FleetResult{Name: "taxi"},
	}
	var savingSum float64
	res.PeakFactor = 1
	end := int64(start + opts.Hours*3600)
	for uberSvc.Now() < end {
		uberSvc.Step()
		taxiSvc.Step()
		// Both worlds tallied their edge loads; one commit folds the
		// combined load into the next tick's congestion factors.
		net.Cong.Commit()
		// Track the peak congestion as it happens: factors decay toward 1
		// every commit, so the end-of-run table remembers nothing about a
		// rush-hour spike followed by a quiet tail.
		for _, f := range net.Cong.Factors() {
			if f > res.PeakFactor {
				res.PeakFactor = f
			}
		}
		if uberSvc.Now()%300 != 0 {
			continue
		}
		for _, p := range probes {
			c, err := pc.Compare(proj.ToLatLng(p))
			if err != nil || len(c.Quotes) < 2 {
				continue
			}
			res.Queries++
			savingSum += c.Savings()
			res.scoreRound(c)
		}
	}
	if res.Queries > 0 {
		res.MeanSaving = savingSum / float64(res.Queries)
	}
	res.Uber.Pickups, res.Uber.Dropoffs, res.Uber.FareVolume = uberW.TotalPickups, uberW.TotalDropoffs, uberW.FareVolume
	res.Taxi.Pickups, res.Taxi.Dropoffs, res.Taxi.FareVolume = taxiW.TotalPickups, taxiW.TotalDropoffs, taxiW.FareVolume
	return res
}

// WriteOpenStreetCab prints the scoreboard in grep-friendly lines (the
// CI road-smoke step asserts on them).
func WriteOpenStreetCab(w io.Writer, opts OpenStreetCabOptions, res *OpenStreetCabResult) {
	share := opts.TaxiShare
	if share <= 0 {
		share = 1
	}
	fmt.Fprintf(w, "openstreetcab: hours=%d seed=%d taxi-share=%.2g\n", opts.Hours, opts.Seed, share)
	for _, fl := range []*FleetResult{&res.Uber, &res.Taxi} {
		fmt.Fprintf(w, "%s fleet: pickups=%d dropoffs=%d fares=$%.2f wins=%d\n",
			fl.Name, fl.Pickups, fl.Dropoffs, fl.FareVolume, fl.Wins)
	}
	fmt.Fprintf(w, "comparison: queries=%d ties=%d mean-saving=$%.2f peak-congestion=%.2fx\n",
		res.Queries, res.Ties, res.MeanSaving, res.PeakFactor)
}
