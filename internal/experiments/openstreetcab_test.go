package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/road"
	"repro/internal/sim"
	"repro/internal/strategy"
	"repro/internal/surge"
)

// TestOpenStreetCab runs the two-service scenario for one rush hour and
// checks the coupling the scenario exists to demonstrate: both fleets
// move passengers over the shared streets, the comparison client gets
// dual quotes, and the combined load pushes some edge past free flow.
func TestOpenStreetCab(t *testing.T) {
	opts := OpenStreetCabOptions{Seed: 42, Hours: 1, Workers: 4}
	res := RunOpenStreetCab(opts)
	if res.Uber.Pickups == 0 || res.Uber.Dropoffs == 0 {
		t.Fatalf("uber fleet idle: %+v", res.Uber)
	}
	if res.Taxi.Pickups == 0 || res.Taxi.Dropoffs == 0 {
		t.Fatalf("taxi fleet idle: %+v", res.Taxi)
	}
	if res.Queries == 0 {
		t.Fatal("comparison client never got dual quotes")
	}
	if res.Uber.Wins+res.Taxi.Wins+res.Ties != res.Queries {
		t.Fatalf("wins %d+%d + ties %d != queries %d", res.Uber.Wins, res.Taxi.Wins, res.Ties, res.Queries)
	}
	if res.PeakFactor <= 1 {
		t.Fatal("two fleets of rush-hour trips left every edge at free flow")
	}
	var sb strings.Builder
	WriteOpenStreetCab(&sb, opts, res)
	out := sb.String()
	for _, want := range []string{"uber fleet: pickups=", "taxi fleet: pickups=", "comparison: queries="} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestOpenStreetCabPeakFactor is the regression test for the PeakFactor
// read: congestion factors decay toward 1 on every commit, so sampling
// the table once after the final commit reports the decayed end-of-run
// state, not the worst factor any edge actually reached. The mirror
// below reruns the scenario's exact deterministic backend (the probe
// queries are reads and touch no world state) tracking the running max
// itself, then checks the runner reported that max — and that the max
// genuinely exceeds the end state, so the old end-of-run read cannot
// pass by luck.
func TestOpenStreetCabPeakFactor(t *testing.T) {
	// 9 hours (17:00→02:00): the evening rush saturates edges at the
	// factor cap, then the overnight tail decays them — exactly the
	// spike-then-quiet shape the end-of-run read misreports.
	opts := OpenStreetCabOptions{Seed: 42, Hours: 9, Workers: 4}

	profile := sim.Manhattan()
	profile.RoadNetwork = true
	taxiProfile := profile.TaxiCity(1)
	net := road.ForProfile(profile.Name, profile.Region)
	const start = 17 * 3600
	uberW := sim.NewWorld(sim.Config{
		Profile: profile, Seed: opts.Seed, StartTime: start,
		Workers: opts.Workers, Road: net, RoadShared: true,
	})
	taxiW := sim.NewWorld(sim.Config{
		Profile: taxiProfile, Seed: opts.Seed + 1, StartTime: start,
		Workers: opts.Workers, Road: net, RoadShared: true,
	})
	uberSvc := api.NewService(uberW, surge.New(uberW, surge.Config{Params: profile.Surge, Seed: opts.Seed}))
	taxiSvc := api.NewService(taxiW, surge.New(taxiW, surge.Config{Params: taxiProfile.Surge, Seed: opts.Seed + 1}))
	trueMax := 1.0
	for uberSvc.Now() < start+int64(opts.Hours)*3600 {
		uberSvc.Step()
		taxiSvc.Step()
		net.Cong.Commit()
		for _, f := range net.Cong.Factors() {
			if f > trueMax {
				trueMax = f
			}
		}
	}
	endMax := 1.0
	for _, f := range net.Cong.Factors() {
		if f > endMax {
			endMax = f
		}
	}
	if trueMax <= endMax {
		t.Fatalf("scenario not discriminating: running max %.4f did not exceed end state %.4f", trueMax, endMax)
	}

	res := RunOpenStreetCab(opts)
	if math.Abs(res.PeakFactor-trueMax) > 1e-9 {
		t.Fatalf("PeakFactor = %.4f, want running max %.4f (end-of-run table max was %.4f)",
			res.PeakFactor, trueMax, endMax)
	}
}

// fakeQuoteService is a core.Service stub that always quotes one fixed
// price and EWT for uberX.
type fakeQuoteService struct {
	usd float64
	ewt float64
}

func (f *fakeQuoteService) PingClient(string, geo.LatLng) (*core.PingResponse, error) {
	return &core.PingResponse{}, nil
}

func (f *fakeQuoteService) EstimatePrice(string, geo.LatLng) ([]core.PriceEstimate, error) {
	return []core.PriceEstimate{{
		TypeName: core.UberX.String(), Surge: 1,
		LowUSD: f.usd * 0.8, HighUSD: f.usd * 1.2, Currency: "USD",
	}}, nil
}

func (f *fakeQuoteService) EstimateTime(string, geo.LatLng) ([]core.TimeEstimate, error) {
	return []core.TimeEstimate{{TypeName: core.UberX.String(), EWTSeconds: f.ewt}}, nil
}

func (f *fakeQuoteService) Now() int64 { return 0 }

// TestOpenStreetCabTies is the regression test for the scoreboard's tie
// handling: strategy's Cheapest index resolves exact-price ties to the
// earlier entry, and the old scoreboard credited that entry a win. Ties
// must land in the Ties column instead — and genuine wins must still be
// credited to whichever service earned them.
func TestOpenStreetCabTies(t *testing.T) {
	compare := func(uberUSD, taxiUSD float64) *strategy.Comparison {
		pc := &strategy.PriceComparison{Services: []strategy.ServiceEntry{
			{Name: "uber", Svc: &fakeQuoteService{usd: uberUSD, ewt: 120}, ClientID: "c", Product: core.UberX},
			{Name: "taxi", Svc: &fakeQuoteService{usd: taxiUSD, ewt: 240}, ClientID: "c", Product: core.UberX},
		}}
		c, err := pc.Compare(geo.LatLng{})
		if err != nil {
			t.Fatalf("Compare: %v", err)
		}
		return c
	}

	var res OpenStreetCabResult
	res.scoreRound(compare(20, 20)) // exact tie: first-listed must NOT win
	res.scoreRound(compare(18, 20)) // uber genuinely cheaper
	res.scoreRound(compare(22, 20)) // taxi genuinely cheaper
	if res.Ties != 1 {
		t.Errorf("Ties = %d, want 1 (tie credited as a win?)", res.Ties)
	}
	if res.Uber.Wins != 1 || res.Taxi.Wins != 1 {
		t.Errorf("wins = uber %d / taxi %d, want 1 / 1", res.Uber.Wins, res.Taxi.Wins)
	}
}
