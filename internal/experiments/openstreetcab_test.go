package experiments

import (
	"strings"
	"testing"
)

// TestOpenStreetCab runs the two-service scenario for one rush hour and
// checks the coupling the scenario exists to demonstrate: both fleets
// move passengers over the shared streets, the comparison client gets
// dual quotes, and the combined load pushes some edge past free flow.
func TestOpenStreetCab(t *testing.T) {
	opts := OpenStreetCabOptions{Seed: 42, Hours: 1, Workers: 4}
	res := RunOpenStreetCab(opts)
	if res.Uber.Pickups == 0 || res.Uber.Dropoffs == 0 {
		t.Fatalf("uber fleet idle: %+v", res.Uber)
	}
	if res.Taxi.Pickups == 0 || res.Taxi.Dropoffs == 0 {
		t.Fatalf("taxi fleet idle: %+v", res.Taxi)
	}
	if res.Queries == 0 {
		t.Fatal("comparison client never got dual quotes")
	}
	if res.Uber.Wins+res.Taxi.Wins != res.Queries {
		t.Fatalf("wins %d+%d != queries %d", res.Uber.Wins, res.Taxi.Wins, res.Queries)
	}
	if res.PeakFactor <= 1 {
		t.Fatal("two fleets of rush-hour trips left every edge at free flow")
	}
	var sb strings.Builder
	WriteOpenStreetCab(&sb, opts, res)
	out := sb.String()
	for _, want := range []string{"uber fleet: pickups=", "taxi fleet: pickups=", "comparison: queries="} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
