package experiments

import "io"

// Preamble is the hand-written header of EXPERIMENTS.md: the reading
// guide and the honest list of known deviations from the paper. It is
// embedded here so `cmd/experiments -preamble` regenerates the whole file
// from one command.
const Preamble = `# EXPERIMENTS — paper vs. measured, for every table and figure

This file records the reproduction outcomes for *Peeking Beneath the Hood
of Uber* (IMC 2015). Each section names the paper's figure or table,
states what the paper reported, and shows what this repository measures
when the paper's methodology (43 emulated clients, API probes, the
surge-area prober, the strategy sweeps) runs against the simulated
backend.

Regenerate everything below with:

` + "```" + `
go run ./cmd/experiments -preamble -days 1 -seed 42 -out EXPERIMENTS.md
` + "```" + `

(` + "`-days 2`" + ` and beyond sharpen the distributions at the cost of runtime;
the shapes are stable from one day up. The numbers below were produced by
exactly that command.)

A note on revisions: the simulation tick is now phase-parallel
(DESIGN.md, "Parallel simulation") and draws from per-shard
counter-based RNG streams instead of one serial stream. Every sampled
number below therefore differs from pre-parallel revisions of this
file — a pure relabeling of the random draws, not a behavior change:
the distributions, orderings, and correlation shapes are the same, and
the worker count never affects results (the tick is bit-for-bit
identical for any ` + "`-sim-workers`" + ` value; see
` + "`TestStepWorkerInvariance`" + `).

Reading guide — what "reproduced" means here: the backend is a simulator
calibrated to the paper's aggregate observations, so absolute counts are
not comparable to 2015 production Uber. The reproduction claims are about
*shape*: orderings between cities, which correlations exist and where
they peak, which stream shows jitter, whether surge is forecastable,
where the avoidance strategy pays. Each section's "Paper:" line states
the shape being tested. Known deviations worth flagging up front:

* **Fig 2**: the diurnal ordering (larger radius at night) reproduces;
  the paper's SF≫Manhattan radius gap does not fully, because the
  simulated SF fleet density is closer to Manhattan's than reality's.
* **Fig 13**: the April client stream shows ~16-20% of surges under one
  minute versus the paper's 40%; pushing the jitter rate high enough to
  match 40% would break Fig 17's "90% of jitter events are seen by one
  client". The paper's two numbers are in tension under any
  uniform-random per-client bug model; we chose the rate that keeps both
  qualitatively right (client stream ≫ API stream in sub-minute surges,
  most jitter events seen by a single client).
* **Figs 20/21**: correlation signs and the Δt = 0 peak reproduce;
  magnitudes are smaller than the paper's because part of the simulated
  surge noise is latent demand the measurement cannot see (which is also
  what keeps Table 1's R² realistically low).
* **Figs 23/24**: the Manhattan-vs-SF contrast reproduces (typical
  Manhattan probes find a cheaper adjacent pickup ~8-19% of the time,
  typical SF probes ~2%), but it is partly built in: SF's surge-area
  boundaries are placed grazing the south-west corner, mirroring the
  paper's observation that only UCSF-corner users benefited. Savings run
  ~0.2-0.4 multiplier steps versus the paper's ≥0.5 — our inter-area
  differentials are one or two quantization steps, the paper's were
  larger.
* **Fig 22**: the *measured* New share does not rise in surging areas,
  although the simulator's ground truth shows new logons flock there
  strongly (+5-14 pp). The 8-nearest-car visibility cap saturates in
  surging areas — suppressed demand piles up idle cars — and hides fresh
  logons from the probes. The Fig 22 section therefore shows the
  ground-truth table next to the measured one; this is a methodology
  limitation the paper's (three-times-denser) taxi validation could not
  have exposed.

---

`

// WritePreamble emits the EXPERIMENTS.md header.
func WritePreamble(w io.Writer) {
	io.WriteString(w, Preamble)
}
