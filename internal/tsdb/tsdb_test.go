package tsdb

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collect drains an iterator, copying each row.
func collect(t *testing.T, it *Iterator) []Row {
	t.Helper()
	var out []Row
	for it.Next() {
		out = append(out, *it.Row())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return out
}

// requireByteEqual asserts two row slices are identical under the
// canonical binary encoding — the acceptance bar for round trips.
func requireByteEqual(t *testing.T, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	var a, b []byte
	for i := range want {
		a = appendRowBinary(a[:0], &got[i])
		b = appendRowBinary(b[:0], &want[i])
		if string(a) != string(b) {
			t.Fatalf("row %d not byte-equal:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// campaign writes n rounds of nSeries clients (5s ping clock, occasional
// gap rows) into db, committing once per round like the measurement loop.
func campaign(t *testing.T, db *DB, rng *rand.Rand, nSeries, rounds int, start int64) []Row {
	t.Helper()
	var all []Row
	perSeries := make(map[int][]Row)
	for s := 0; s < nSeries; s++ {
		perSeries[s] = randomRows(rng, s, rounds, start)
	}
	for i := 0; i < rounds; i++ {
		for s := 0; s < nSeries; s++ {
			row := perSeries[s][i]
			if err := db.Append(row); err != nil {
				t.Fatalf("append: %v", err)
			}
			all = append(all, row)
		}
		if err := db.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	return all
}

// crash drops the DB's file handles without sealing or flushing buffered
// WAL bytes — what a kill -9 leaves behind.
func crash(db *DB) {
	db.wg.Wait()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, sr := range db.segs {
		sr.close()
	}
	for _, sr := range db.graveyard {
		sr.close()
	}
	if db.wal != nil {
		db.wal.f.Close() // bufio buffer is lost, like an OS crash
		db.wal = nil
	}
	db.segs, db.graveyard = nil, nil
	db.closed = true
}

func TestRoundTripCleanClose(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Extra: []byte(`{"city":"sf"}`)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	want := campaign(t, db, rng, 5, 300, 0)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Recovered() != 0 {
		t.Fatalf("clean close recovered %d rows from WAL, want 0", db2.Recovered())
	}
	if string(db2.Extra()) != `{"city":"sf"}` {
		t.Fatalf("Extra = %s", db2.Extra())
	}
	got := collect(t, db2.QueryAll(-1<<62, 1<<62))
	requireByteEqual(t, got, want)

	// Per-series queries return the same rows partitioned by series.
	var bySeries []Row
	for _, s := range db2.Series() {
		bySeries = append(bySeries, collect(t, db2.Query(s, -1<<62, 1<<62))...)
	}
	if len(bySeries) != len(want) {
		t.Fatalf("per-series total %d, want %d", len(bySeries), len(want))
	}
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	// Small head so some rows are sealed and some live only in the WAL.
	db, err := Open(dir, Options{HeadMaxRows: 400})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	want := campaign(t, db, rng, 4, 250, 0)
	// A few appends after the last commit: buffered only, lost in the crash.
	lost := Row{Time: 1e9, Series: 0, Gap: true, Reason: "uncommitted"}
	if err := db.Append(lost); err != nil {
		t.Fatal(err)
	}
	crash(db)

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Recovered() == 0 {
		t.Fatal("crash recovery replayed 0 WAL rows; test should exercise the WAL")
	}
	got := collect(t, db2.QueryAll(-1<<62, 1<<62))
	requireByteEqual(t, got, want)
}

func TestCrashAllInWAL(t *testing.T) {
	// Everything in the head: no segment ever sealed.
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	want := campaign(t, db, rng, 3, 40, 100)
	crash(db)

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Recovered() != len(want) {
		t.Fatalf("recovered %d rows, want %d", db2.Recovered(), len(want))
	}
	requireByteEqual(t, collect(t, db2.QueryAll(-1<<62, 1<<62)), want)
}

func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	want := campaign(t, db, rng, 2, 30, 0)
	crash(db)

	// Tear the tail mid-record, as if the machine died during a write.
	walPath := filepath.Join(dir, "wal", "head.wal")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-11); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, db2.QueryAll(-1<<62, 1<<62))
	// The torn record (and only it) is gone.
	if len(got) != len(want)-1 {
		t.Fatalf("got %d rows after torn tail, want %d", len(got), len(want)-1)
	}
	requireByteEqual(t, got, want[:len(got)])
	// The store keeps working after recovery.
	next := Row{Time: want[len(want)-1].Time + 5, Series: 0}
	if err := db2.Append(next); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStaleWALDiscarded(t *testing.T) {
	// Simulate a crash between segment rename and WAL rotation: the WAL's
	// seq names a segment that already exists, so replaying it would
	// duplicate every row.
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	want := campaign(t, db, rng, 2, 50, 0)
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	sealedSeq := db.maxSealedSeq()
	crash(db)

	// Fabricate the pre-rotation WAL: same seq as the sealed segment,
	// holding the same rows.
	w, err := createWAL(filepath.Join(dir, "wal", "head.wal"), sealedSeq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if err := w.append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Recovered() != 0 {
		t.Fatalf("stale WAL replayed %d rows, want 0", db2.Recovered())
	}
	requireByteEqual(t, collect(t, db2.QueryAll(-1<<62, 1<<62)), want)
}

func TestVerifyDetectsFlippedByte(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	campaign(t, db, rng, 3, 100, 0)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if rep, err := Verify(dir); err != nil {
		t.Fatalf("verify clean store: %v", err)
	} else if len(rep.Segments) != 1 || rep.Rows == 0 {
		t.Fatalf("verify report: %+v", rep)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "seg", "*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a single byte in the middle of a chunk payload.
	mut := append([]byte(nil), data...)
	mut[len(mut)/3] ^= 0x04
	if err := os.WriteFile(segs[0], mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("verify after flipped byte: err = %v, want ErrCorrupt", err)
	}

	// Restore, then flip a byte in the index region instead.
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	mut = append([]byte(nil), data...)
	mut[len(mut)-footerSize-2] ^= 0x01
	if err := os.WriteFile(segs[0], mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("verify accepted corrupted index")
	}
}

func TestAutoSealAndCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{HeadMaxRows: 100, CompactMinSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	want := campaign(t, db, rng, 4, 200, 0)
	st := db.Stats()
	if st.Segments < 2 {
		t.Fatalf("auto-seal produced %d segments, want ≥2", st.Segments)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Segments; got != 1 {
		t.Fatalf("after compaction: %d segments, want 1", got)
	}
	requireByteEqual(t, collect(t, db.QueryAll(-1<<62, 1<<62)), want)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The merged file survives reopen and verification.
	db2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	requireByteEqual(t, collect(t, db2.QueryAll(-1<<62, 1<<62)), want)
	db2.Close()
	if _, err := Verify(dir); err != nil {
		t.Fatalf("verify after compaction: %v", err)
	}
}

func TestCompactionLeftoverCleanedOnOpen(t *testing.T) {
	// A crash can leave a compaction input behind next to the merged file;
	// open must prefer the merged file and ignore (then delete) the input.
	dir := t.TempDir()
	db, err := Open(dir, Options{HeadMaxRows: 60, CompactMinSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	want := campaign(t, db, rng, 2, 120, 0)
	if db.Stats().Segments < 2 {
		t.Fatal("need ≥2 segments for this test")
	}
	// Preserve one input as the "leftover" a crash would leave.
	db.mu.Lock()
	leftoverSrc := db.segs[0].path
	db.mu.Unlock()
	leftoverData, err := os.ReadFile(leftoverSrc)
	if err != nil {
		t.Fatal(err)
	}
	leftoverName := filepath.Base(leftoverSrc)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	leftover := filepath.Join(dir, "seg", leftoverName)
	if err := os.WriteFile(leftover, leftoverData, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireByteEqual(t, collect(t, db2.QueryAll(-1<<62, 1<<62)), want)
	db2.Close()
	if _, err := os.Stat(leftover); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("leftover input not cleaned up: %v", err)
	}
}

func TestRangeQueryWindow(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{HeadMaxRows: 150, CompactMinSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(18))
	all := campaign(t, db, rng, 3, 200, 0)

	from, to := int64(250), int64(600)
	var want []Row
	for _, r := range all {
		if r.Time >= from && r.Time < to {
			want = append(want, r)
		}
	}
	requireByteEqual(t, collect(t, db.QueryAll(from, to)), want)

	// Empty window, window before data, window after data.
	if rows := collect(t, db.QueryAll(50, 50)); len(rows) != 0 {
		t.Fatalf("empty window returned %d rows", len(rows))
	}
	if rows := collect(t, db.Query(1, -100, 0)); len(rows) != 0 {
		t.Fatalf("pre-data window returned %d rows", len(rows))
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Append(Row{Time: 100, Series: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(Row{Time: 99, Series: 1}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order append: err = %v", err)
	}
	// Equal timestamps and other series are fine.
	if err := db.Append(Row{Time: 100, Series: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(Row{Time: 50, Series: 2}); err != nil {
		t.Fatal(err)
	}
	// The check survives seal + reopen (lastTime seeded from segments).
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Append(Row{Time: 99, Series: 1}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order after reopen: err = %v", err)
	}
}

func TestRetention(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{RetainSeconds: 100, CompactMinSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		for j := 0; j < 10; j++ {
			row := Row{Time: int64(i*1000 + j*5), Series: 0}
			if err := db.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Segments != 1 {
		t.Fatalf("retention kept %d segments, want 1", st.Segments)
	}
	minT, _, ok := db.Bounds()
	if !ok || minT < 4000-100 {
		t.Fatalf("bounds after retention: min=%d ok=%v", minT, ok)
	}
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Append(Row{Time: 1, Series: 0})
	db.Close()

	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.Append(Row{Time: 2, Series: 0}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only append: err = %v", err)
	}
	if err := ro.Seal(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only seal: err = %v", err)
	}
	if _, err := Open(t.TempDir(), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open of a non-store succeeded")
	}
}

func TestIsStoreAndMetaVersion(t *testing.T) {
	dir := t.TempDir()
	if IsStore(dir) {
		t.Fatal("empty dir reported as store")
	}
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if !IsStore(dir) {
		t.Fatal("store not recognized")
	}
	// Future format versions are rejected, not misread.
	if err := os.WriteFile(filepath.Join(dir, "META.json"), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: err = %v", err)
	}
}

func TestVerifyReportsWALRows(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	want := campaign(t, db, rng, 2, 20, 0)
	crash(db)

	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WALRows != len(want) {
		t.Fatalf("verify WALRows = %d, want %d", rep.WALRows, len(want))
	}
	// Verify must not have mutated anything: a reopen still recovers.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Recovered() != len(want) {
		t.Fatalf("recovered %d after Verify, want %d", db2.Recovered(), len(want))
	}
}

func TestIteratorSurvivesConcurrentSeal(t *testing.T) {
	// An iterator snapshots its chunk refs; sealing or compacting under it
	// must not invalidate the rows it yields.
	dir := t.TempDir()
	db, err := Open(dir, Options{CompactMinSegments: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(20))
	want := campaign(t, db, rng, 2, 100, 0)

	it := db.QueryAll(-1<<62, 1<<62)
	var got []Row
	for i := 0; it.Next(); i++ {
		got = append(got, *it.Row())
		if i == 10 {
			if err := db.Seal(); err != nil {
				t.Fatal(err)
			}
			if err := db.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	requireByteEqual(t, got, want)
}
