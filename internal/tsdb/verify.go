// Verify is the integrity walk behind `tsdbtool verify`: every sealed
// segment's whole-file CRC is recomputed (a single flipped byte anywhere
// fails it), every chunk is CRC-checked and decoded, invariants (row
// counts, time bounds, per-series ordering) are re-derived rather than
// trusted, and the WAL is scanned to report how many rows a reopen would
// recover. Verify never mutates the store.

package tsdb

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// SegmentReport describes one verified segment.
type SegmentReport struct {
	Path       string
	Bytes      int64
	Rows       uint64
	Chunks     int
	MinT, MaxT int64
}

// Report is the result of a successful Verify.
type Report struct {
	Segments []SegmentReport
	Rows     uint64 // total sealed rows
	WALRows  int    // rows a reopen would recover from the WAL
	WALTorn  bool   // the WAL had a truncated/corrupt tail (dropped)
	WALStale bool   // the WAL's head was already sealed; it will be discarded
}

// Verify checks the store at dir without opening it for writing.
func Verify(dir string) (Report, error) {
	var rep Report
	if !IsStore(dir) {
		return rep, fmt.Errorf("tsdb: %s: not a store (no META.json)", dir)
	}
	files, err := listSegFiles(filepath.Join(dir, "seg"), true)
	if err != nil {
		return rep, err
	}
	var maxSealed uint64
	for _, f := range files {
		sr, err := openSegment(f.path, f.lo, f.hi)
		if err != nil {
			return rep, err
		}
		segRep, err := verifySegment(sr)
		sr.close()
		if err != nil {
			return rep, err
		}
		rep.Segments = append(rep.Segments, segRep)
		rep.Rows += segRep.Rows
		if f.hi > maxSealed {
			maxSealed = f.hi
		}
	}
	res, err := scanWAL(filepath.Join(dir, "wal", "head.wal"))
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return rep, err
	case res.seq <= maxSealed && maxSealed > 0:
		rep.WALStale = true
	default:
		rep.WALRows = len(res.rows)
		rep.WALTorn = res.torn
	}
	return rep, nil
}

func verifySegment(sr *segmentReader) (SegmentReport, error) {
	rep := SegmentReport{Path: sr.path, Bytes: sr.size, MinT: sr.minT, MaxT: sr.maxT}
	if err := sr.verifyFileCRC(); err != nil {
		return rep, err
	}
	for _, s := range sr.series {
		last := int64(math.MinInt64)
		for _, e := range sr.bySeries[s] {
			rows, err := sr.chunk(e) // CRC + decode + count check
			if err != nil {
				return rep, err
			}
			for _, r := range rows {
				if r.Time < e.minT || r.Time > e.maxT {
					return rep, fmt.Errorf("tsdb: %s: row outside chunk bounds: %w", sr.path, ErrCorrupt)
				}
				if r.Time < last {
					return rep, fmt.Errorf("tsdb: %s: series %d out of order: %w", sr.path, s, ErrCorrupt)
				}
				last = r.Time
			}
			rep.Rows += uint64(len(rows))
			rep.Chunks++
		}
	}
	return rep, nil
}
