package tsdb

import (
	"math/rand"
	"testing"
)

// benchCampaign is a 43-client campaign round set sized for benchmarks
// (43 clients is the paper's SF/Manhattan measurement grid).
func benchCampaign(rounds int) [][]Row {
	rng := rand.New(rand.NewSource(99))
	const clients = 43
	perSeries := make([][]Row, clients)
	for s := 0; s < clients; s++ {
		perSeries[s] = randomRows(rng, s, rounds, 0)
	}
	byRound := make([][]Row, rounds)
	for i := 0; i < rounds; i++ {
		for s := 0; s < clients; s++ {
			byRound[i] = append(byRound[i], perSeries[s][i])
		}
	}
	return byRound
}

func BenchmarkAppend(b *testing.B) {
	rounds := benchCampaign(200)
	db, err := Open(b.TempDir(), Options{SyncEveryCommits: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		round := rounds[i%len(rounds)]
		base := int64(i/len(rounds)) * 1e6 // keep time monotonic across laps
		for _, row := range round {
			row.Time += base
			if err := db.Append(row); err != nil {
				b.Fatal(err)
			}
			n++
		}
		if err := db.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkSealedBytesPerRow(b *testing.B) {
	rounds := benchCampaign(400)
	for i := 0; i < b.N; i++ {
		db, err := Open(b.TempDir(), Options{SyncEveryCommits: -1})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, round := range rounds {
			for _, row := range round {
				if err := db.Append(row); err != nil {
					b.Fatal(err)
				}
				n++
			}
		}
		if err := db.Seal(); err != nil {
			b.Fatal(err)
		}
		st := db.Stats()
		db.Close()
		b.ReportMetric(float64(st.SegmentBytes)/float64(n), "bytes/row")
	}
}

// BenchmarkRangeQuery measures a one-hour window query against a sealed
// multi-hour store — the access pattern cmd/analyze uses with -from/-to.
func BenchmarkRangeQuery(b *testing.B) {
	rounds := benchCampaign(2000) // ~2.8 campaign hours at 5s/round
	db, err := Open(b.TempDir(), Options{SyncEveryCommits: -1, HeadMaxRows: 20000, CompactMinSegments: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for _, round := range rounds {
		for _, row := range round {
			if err := db.Append(row); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := db.Seal(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := db.Query(7, 4000, 4720) // 720s window, one series
		n := 0
		for it.Next() {
			n++
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("window query returned nothing")
		}
	}
}

// BenchmarkFullScan is the baseline the range query is compared against:
// decode every row in the store.
func BenchmarkFullScan(b *testing.B) {
	rounds := benchCampaign(2000)
	db, err := Open(b.TempDir(), Options{SyncEveryCommits: -1, HeadMaxRows: 20000, CompactMinSegments: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	total := 0
	for _, round := range rounds {
		for _, row := range round {
			if err := db.Append(row); err != nil {
				b.Fatal(err)
			}
			total++
		}
	}
	if err := db.Seal(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := db.QueryAll(-1<<62, 1<<62)
		n := 0
		for it.Next() {
			n++
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		if n != total {
			b.Fatalf("scan saw %d rows, want %d", n, total)
		}
	}
}
