// The row model: one observation of one series (campaign client) at one
// timestamp, plus the flat binary encoding used by the write-ahead log.
// The WAL favors encode speed and self-delimiting robustness over size;
// the columnar chunk codec (block.go) is where compression happens.

package tsdb

import (
	"encoding/binary"
	"math"
)

// Sanity caps applied when decoding untrusted bytes. Real campaign rows
// carry ≤ 9 products × ≤ 8 cars; the caps are generous multiples so a
// corrupt length prefix cannot drive an unbounded allocation.
const (
	maxTypesPerRow = 256
	maxCarsPerType = 4096
	maxRowsPerWAL  = 1 << 24
)

// Car is one visible vehicle: per-session randomized id and position.
type Car struct {
	ID       string
	Lat, Lng float64
}

// TypeObs is one product's section of an observation.
type TypeObs struct {
	Name       string
	Surge, EWT float64
	Cars       []Car
}

// Row is one stored observation. A Gap row records a failed ping (an
// explicit hole in the campaign, mirroring record's v2 gap rows) and
// carries Reason instead of Types.
type Row struct {
	Time   int64
	Series int
	Gap    bool
	Reason string
	Types  []TypeObs
}

// appendRowBinary appends the flat encoding of r. It is the WAL record
// payload and also the byte-equality witness used by tests: two rows are
// identical iff their encodings are.
func appendRowBinary(buf []byte, r *Row) []byte {
	buf = binary.AppendUvarint(buf, zigzag(r.Time))
	buf = binary.AppendUvarint(buf, uint64(r.Series))
	if r.Gap {
		buf = append(buf, 1)
		return appendString(buf, r.Reason)
	}
	buf = append(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(len(r.Types)))
	for i := range r.Types {
		t := &r.Types[i]
		buf = appendString(buf, t.Name)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.Surge))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.EWT))
		buf = binary.AppendUvarint(buf, uint64(len(t.Cars)))
		for _, c := range t.Cars {
			buf = appendString(buf, c.ID)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Lat))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Lng))
		}
	}
	return buf
}

// decodeRowBinary decodes one row from data, which must contain exactly
// one encoded row (WAL records are length-prefixed externally).
func decodeRowBinary(data []byte) (Row, error) {
	r := &byteReader{b: data}
	var row Row
	row.Time = unzigzag(r.uvarint())
	series := r.uvarint()
	if series > math.MaxInt32 {
		return Row{}, ErrCorrupt
	}
	row.Series = int(series)
	switch r.byte() {
	case 1:
		row.Gap = true
		row.Reason = r.str()
		if r.err != nil || r.remaining() != 0 {
			return Row{}, ErrCorrupt
		}
		return row, nil
	case 0:
	default:
		// Only 0/1 are valid: the encoding must stay canonical (tests use
		// it as a byte-equality witness).
		return Row{}, ErrCorrupt
	}
	nTypes := r.uvarint()
	// Each type costs ≥ 18 bytes (name prefix + two floats + car count).
	if r.err != nil || nTypes > maxTypesPerRow || nTypes > uint64(r.remaining()/18+1) {
		return Row{}, ErrCorrupt
	}
	if nTypes > 0 {
		row.Types = make([]TypeObs, 0, nTypes)
	}
	for i := uint64(0); i < nTypes; i++ {
		var t TypeObs
		t.Name = r.str()
		t.Surge = r.f64()
		t.EWT = r.f64()
		nCars := r.uvarint()
		// Each car costs ≥ 17 bytes (id prefix + two floats).
		if r.err != nil || nCars > maxCarsPerType || nCars > uint64(r.remaining()/17+1) {
			return Row{}, ErrCorrupt
		}
		if nCars > 0 {
			t.Cars = make([]Car, 0, nCars)
		}
		for j := uint64(0); j < nCars; j++ {
			var c Car
			c.ID = r.str()
			c.Lat = r.f64()
			c.Lng = r.f64()
			t.Cars = append(t.Cars, c)
		}
		row.Types = append(row.Types, t)
	}
	if r.err != nil || r.remaining() != 0 {
		return Row{}, ErrCorrupt
	}
	return row, nil
}
