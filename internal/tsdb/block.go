// The columnar chunk codec. A chunk holds up to chunkRows consecutive
// observations of ONE series, transposed into columns so each column gets
// the codec that suits it:
//
//	timestamps     delta-of-delta varints (5 s ping clock → 1 byte/row)
//	row meta       uvarint(2·nTypes | gapBit)
//	type names     per-chunk dictionary references
//	surge, EWT     Gorilla XOR floats (few distinct quantized values)
//	car counts     uvarints
//	car ids        dictionary references (ids repeat while a car is visible)
//	car lat/lng    Gorilla XOR floats (drifting coordinates)
//	gap reasons    dictionary references
//
// Layout: nRows | dictionary | columns (each uvarint-length-prefixed).
// The segment writer appends a CRC32 after each chunk payload.

package tsdb

import (
	"encoding/binary"
	"math"
)

// defaultChunkRows bounds rows per chunk: it is the sparse-index
// granularity (a range query decodes at most one partial chunk on each
// side of the window) and the dictionary scope.
const defaultChunkRows = 512

const maxRowsPerChunk = 1 << 20

// encodeChunk encodes rows (one series, non-decreasing time) into a
// self-contained payload.
func encodeChunk(rows []Row) []byte {
	var (
		dict      dictBuilder
		times     = make([]int64, len(rows))
		meta      []byte
		typeIDs   []byte
		surges    []float64
		ewts      []float64
		carCounts []byte
		carIDs    []byte
		lats      []float64
		lngs      []float64
		reasons   []byte
	)
	for i := range rows {
		r := &rows[i]
		times[i] = r.Time
		if r.Gap {
			meta = binary.AppendUvarint(meta, 1)
			reasons = binary.AppendUvarint(reasons, dict.id(r.Reason))
			continue
		}
		meta = binary.AppendUvarint(meta, uint64(len(r.Types))<<1)
		for ti := range r.Types {
			t := &r.Types[ti]
			typeIDs = binary.AppendUvarint(typeIDs, dict.id(t.Name))
			surges = append(surges, t.Surge)
			ewts = append(ewts, t.EWT)
			carCounts = binary.AppendUvarint(carCounts, uint64(len(t.Cars)))
			for _, c := range t.Cars {
				carIDs = binary.AppendUvarint(carIDs, dict.id(c.ID))
				lats = append(lats, c.Lat)
				lngs = append(lngs, c.Lng)
			}
		}
	}

	buf := binary.AppendUvarint(nil, uint64(len(rows)))
	buf = dict.encode(buf)
	appendCol := func(col []byte) {
		buf = binary.AppendUvarint(buf, uint64(len(col)))
		buf = append(buf, col...)
	}
	appendCol(timesEncode(nil, times))
	appendCol(meta)
	appendCol(typeIDs)
	appendCol(xorEncode(nil, surges))
	appendCol(xorEncode(nil, ewts))
	appendCol(carCounts)
	appendCol(carIDs)
	appendCol(xorEncode(nil, lats))
	appendCol(xorEncode(nil, lngs))
	appendCol(reasons)
	return buf
}

// decodeChunk decodes a chunk payload into rows, assigning every row the
// given series. It never panics on corrupt input.
func decodeChunk(payload []byte, series int) ([]Row, error) {
	r := &byteReader{b: payload}
	nRows := r.uvarint()
	// Each row costs at least one meta byte and one timestamp byte.
	if r.err != nil || nRows > maxRowsPerChunk || nRows > uint64(len(payload)) {
		return nil, ErrCorrupt
	}
	strs, err := dictDecode(r)
	if err != nil {
		return nil, err
	}
	col := func() *byteReader {
		n := r.uvarint()
		if r.err != nil || n > uint64(r.remaining()) {
			r.fail()
			return &byteReader{err: ErrCorrupt}
		}
		return &byteReader{b: r.take(int(n))}
	}

	timesCol := col()
	times, err := timesDecode(timesCol)
	if err != nil || uint64(len(times)) != nRows {
		return nil, ErrCorrupt
	}
	metaCol := col()
	typeIDsCol := col()
	surgesCol := col()
	ewtsCol := col()
	carCountsCol := col()
	carIDsCol := col()
	latsCol := col()
	lngsCol := col()
	reasonsCol := col()
	if r.err != nil {
		return nil, r.err
	}

	// First pass over meta to learn the per-row type counts.
	counts := make([]uint64, nRows)
	var totalTypes uint64
	for i := range counts {
		v := metaCol.uvarint()
		if v&1 == 1 {
			counts[i] = math.MaxUint64 // gap marker
			continue
		}
		counts[i] = v >> 1
		if counts[i] > maxTypesPerRow {
			return nil, ErrCorrupt
		}
		totalTypes += counts[i]
	}
	if metaCol.err != nil || totalTypes > uint64(typeIDsCol.remaining())+1 {
		return nil, ErrCorrupt
	}

	surges, err := xorDecode(surgesCol)
	if err != nil || uint64(len(surges)) != totalTypes {
		return nil, ErrCorrupt
	}
	ewts, err := xorDecode(ewtsCol)
	if err != nil || uint64(len(ewts)) != totalTypes {
		return nil, ErrCorrupt
	}
	carCounts := make([]uint64, totalTypes)
	var totalCars uint64
	for i := range carCounts {
		carCounts[i] = carCountsCol.uvarint()
		if carCounts[i] > maxCarsPerType {
			return nil, ErrCorrupt
		}
		totalCars += carCounts[i]
	}
	if carCountsCol.err != nil || totalCars > uint64(carIDsCol.remaining())+1 {
		return nil, ErrCorrupt
	}
	lats, err := xorDecode(latsCol)
	if err != nil || uint64(len(lats)) != totalCars {
		return nil, ErrCorrupt
	}
	lngs, err := xorDecode(lngsCol)
	if err != nil || uint64(len(lngs)) != totalCars {
		return nil, ErrCorrupt
	}

	rows := make([]Row, nRows)
	ti, ci := 0, 0
	for i := range rows {
		row := &rows[i]
		row.Time = times[i]
		row.Series = series
		if counts[i] == math.MaxUint64 {
			row.Gap = true
			row.Reason, err = dictRef(strs, reasonsCol.uvarint())
			if err != nil || reasonsCol.err != nil {
				return nil, ErrCorrupt
			}
			continue
		}
		if counts[i] == 0 {
			continue
		}
		row.Types = make([]TypeObs, counts[i])
		for k := range row.Types {
			t := &row.Types[k]
			t.Name, err = dictRef(strs, typeIDsCol.uvarint())
			if err != nil || typeIDsCol.err != nil {
				return nil, ErrCorrupt
			}
			t.Surge = surges[ti]
			t.EWT = ewts[ti]
			nc := carCounts[ti]
			ti++
			if nc == 0 {
				continue
			}
			t.Cars = make([]Car, nc)
			for m := range t.Cars {
				c := &t.Cars[m]
				c.ID, err = dictRef(strs, carIDsCol.uvarint())
				if err != nil || carIDsCol.err != nil {
					return nil, ErrCorrupt
				}
				c.Lat = lats[ci]
				c.Lng = lngs[ci]
				ci++
			}
		}
	}
	return rows, nil
}
