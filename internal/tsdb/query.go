// Range queries. Query walks one series; QueryAll merges every series by
// time (ties broken by series id), which is how a campaign replay
// reconstructs ping rounds. Both decode lazily, chunk by chunk, touching
// only chunks whose [minT, maxT] intersects the window — the point of the
// sparse index: a one-hour window of a four-week campaign reads a few
// chunks, not the whole file.

package tsdb

import (
	"container/heap"
	"sort"
)

// chunkRef is one lazily decodable batch: either a sealed chunk or a
// filtered snapshot of head rows.
type chunkRef struct {
	sr    *segmentReader // nil ⇒ head batch
	entry chunkEntry
	head  []Row
}

// seriesIter yields one series' rows within [from, to) in time order.
type seriesIter struct {
	refs     []chunkRef
	from, to int64
	cur      []Row
	idx      int
	err      error
}

// clip narrows rows (time-sorted) to [from, to).
func clip(rows []Row, from, to int64) []Row {
	lo := sort.Search(len(rows), func(i int) bool { return rows[i].Time >= from })
	hi := sort.Search(len(rows), func(i int) bool { return rows[i].Time >= to })
	return rows[lo:hi]
}

func (it *seriesIter) next() (*Row, bool) {
	for {
		if it.err != nil {
			return nil, false
		}
		if it.idx < len(it.cur) {
			r := &it.cur[it.idx]
			it.idx++
			return r, true
		}
		if len(it.refs) == 0 {
			return nil, false
		}
		ref := it.refs[0]
		it.refs = it.refs[1:]
		if ref.sr == nil {
			it.cur = clip(ref.head, it.from, it.to)
		} else {
			rows, err := ref.sr.chunk(ref.entry)
			if err != nil {
				it.err = err
				return nil, false
			}
			it.cur = clip(rows, it.from, it.to)
		}
		it.idx = 0
	}
}

// Iterator walks query results. Typical use:
//
//	it, _ := db.Query(3, from, to)
//	for it.Next() {
//		row := it.Row() // valid until the next call to Next
//	}
//	if err := it.Err(); err != nil { ... }
type Iterator struct {
	single *seriesIter
	merged *mergeIter
	row    *Row
}

// Next advances to the next row, reporting false at the end of the window
// or on error.
func (it *Iterator) Next() bool {
	var r *Row
	var ok bool
	if it.single != nil {
		r, ok = it.single.next()
	} else {
		r, ok = it.merged.next()
	}
	it.row = r
	return ok
}

// Row returns the current row; it stays valid until the next call to Next.
func (it *Iterator) Row() *Row { return it.row }

// Err returns the first decoding/IO error encountered, if any.
func (it *Iterator) Err() error {
	if it.single != nil {
		return it.single.err
	}
	return it.merged.err()
}

// seriesIterLocked snapshots the chunk refs for one series under db.mu.
// Decoding happens outside the lock.
func (db *DB) seriesIterLocked(series int, from, to int64) *seriesIter {
	it := &seriesIter{from: from, to: to}
	for _, sr := range db.segs {
		for _, e := range sr.overlapping(series, from, to) {
			it.refs = append(it.refs, chunkRef{sr: sr, entry: e})
		}
	}
	if rows := db.head[series]; len(rows) > 0 {
		// Snapshot the slice header: appends either grow beyond the
		// snapshot's length (invisible) or reallocate; elements are
		// never mutated in place.
		it.refs = append(it.refs, chunkRef{head: rows})
	}
	return it
}

// Query returns an iterator over one series' rows with from ≤ Time < to.
func (db *DB) Query(series int, from, to int64) *Iterator {
	db.mu.Lock()
	defer db.mu.Unlock()
	return &Iterator{single: db.seriesIterLocked(series, from, to)}
}

// QueryAll returns an iterator over every series' rows with
// from ≤ Time < to, merged in (time, series) order.
func (db *DB) QueryAll(from, to int64) *Iterator {
	db.mu.Lock()
	set := make(map[int]bool)
	for _, sr := range db.segs {
		for _, s := range sr.series {
			set[s] = true
		}
	}
	for s, rows := range db.head {
		if len(rows) > 0 {
			set[s] = true
		}
	}
	m := &mergeIter{}
	for s := range set {
		m.sources = append(m.sources, mergeSource{series: s, it: db.seriesIterLocked(s, from, to)})
	}
	db.mu.Unlock()
	m.init()
	return &Iterator{merged: m}
}

type mergeSource struct {
	series int
	it     *seriesIter
	row    *Row
}

type mergeIter struct {
	sources []mergeSource // pending init
	h       mergeHeap
	failure error
}

func (m *mergeIter) init() {
	for _, src := range m.sources {
		if r, ok := src.it.next(); ok {
			src.row = r
			m.h = append(m.h, src)
		} else if src.it.err != nil && m.failure == nil {
			m.failure = src.it.err
		}
	}
	m.sources = nil
	heap.Init(&m.h)
}

func (m *mergeIter) next() (*Row, bool) {
	if m.failure != nil || len(m.h) == 0 {
		return nil, false
	}
	src := m.h[0]
	row := src.row
	if r, ok := src.it.next(); ok {
		src.row = r
		m.h[0] = src
		heap.Fix(&m.h, 0)
	} else {
		if src.it.err != nil {
			m.failure = src.it.err
			return nil, false
		}
		heap.Pop(&m.h)
	}
	return row, true
}

func (m *mergeIter) err() error { return m.failure }

type mergeHeap []mergeSource

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].row.Time != h[j].row.Time {
		return h[i].row.Time < h[j].row.Time
	}
	return h[i].series < h[j].series
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeSource)) }
func (h *mergeHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
