// Codec primitives for the columnar block format: zigzag varints,
// delta-of-delta timestamp encoding, Gorilla-style XOR float compression
// over a bitstream, and per-chunk string dictionaries.
//
// Every decoder is defensive: arbitrary input bytes must produce an error,
// never a panic or an unbounded allocation (FuzzCodec pins this). Counts
// read from the wire are validated against the bytes that must back them
// before anything is allocated.

package tsdb

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"
)

// ErrCorrupt is returned when encoded bytes fail validation (bad varint,
// impossible count, CRC mismatch, dictionary reference out of range).
var ErrCorrupt = errors.New("tsdb: corrupt data")

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// byteReader is a bounds-checked sequential reader. After any failure err
// is set and every subsequent read returns zero values.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail() {
	if r.err == nil {
		r.err = ErrCorrupt
	}
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	// Reject non-minimal encodings (e.g. 0x80 0x00 for zero) so every value
	// has exactly one byte representation — the codec stays canonical.
	if n <= 0 || n != uvarintLen(v) {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// uvarintLen is the length of the minimal uvarint encoding of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (r *byteReader) varint() int64 { return unzigzag(r.uvarint()) }

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail()
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *byteReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *byteReader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// str reads a uvarint-length-prefixed string.
func (r *byteReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail()
		return ""
	}
	return string(r.take(int(n)))
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ---- bitstream ----

type bitWriter struct {
	buf []byte
	cur byte
	n   uint // bits used in cur
}

func (w *bitWriter) writeBit(b uint64) {
	w.cur = w.cur<<1 | byte(b&1)
	w.n++
	if w.n == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.n = 0, 0
	}
}

// writeBits writes the low nb bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, nb uint) {
	for i := int(nb) - 1; i >= 0; i-- {
		w.writeBit(v >> uint(i))
	}
}

// finish pads the final byte with zero bits and returns the stream.
func (w *bitWriter) finish() []byte {
	for w.n != 0 {
		w.writeBit(0)
	}
	return w.buf
}

type bitReader struct {
	buf  []byte
	off  int  // byte offset
	bit  uint // bits consumed from buf[off]
	fail bool
}

func (r *bitReader) readBit() uint64 {
	if r.fail || r.off >= len(r.buf) {
		r.fail = true
		return 0
	}
	b := uint64(r.buf[r.off]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.off++
	}
	return b
}

func (r *bitReader) readBits(nb uint) uint64 {
	var v uint64
	for i := uint(0); i < nb; i++ {
		v = v<<1 | r.readBit()
	}
	return v
}

// bitsLeft returns how many unread bits remain.
func (r *bitReader) bitsLeft() int {
	return (len(r.buf)-r.off)*8 - int(r.bit)
}

// ---- delta-of-delta timestamps ----

// timesEncode encodes timestamps as zigzag varints of the first value, the
// first delta, and then deltas-of-deltas. Regular sampling (the 5-second
// ping clock) collapses to one byte per timestamp after the first two.
func timesEncode(buf []byte, ts []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	var prev, prevDelta int64
	for i, t := range ts {
		switch i {
		case 0:
			buf = binary.AppendUvarint(buf, zigzag(t))
		case 1:
			prevDelta = t - prev
			buf = binary.AppendUvarint(buf, zigzag(prevDelta))
		default:
			d := t - prev
			buf = binary.AppendUvarint(buf, zigzag(d-prevDelta))
			prevDelta = d
		}
		prev = t
	}
	return buf
}

// timesDecode reads a timestamp block produced by timesEncode.
func timesDecode(r *byteReader) ([]int64, error) {
	n := r.uvarint()
	// Each encoded timestamp costs at least one byte, so n is bounded by
	// the remaining payload; this rejects absurd counts before allocating.
	if r.err != nil || n > uint64(r.remaining()) {
		return nil, ErrCorrupt
	}
	out := make([]int64, n)
	var prev, prevDelta int64
	for i := range out {
		v := r.varint()
		switch i {
		case 0:
			prev = v
		case 1:
			prevDelta = v
			prev += v
		default:
			prevDelta += v
			prev += prevDelta
		}
		out[i] = prev
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

// ---- Gorilla XOR floats ----

// xorEncode compresses values with the Facebook Gorilla scheme: each value
// is XORed with its predecessor; a zero XOR costs one bit, and nonzero
// XORs reuse the previous leading/trailing-zero window when they fit.
// Surge multipliers (few distinct quantized values) and slowly drifting
// coordinates compress to a few bits each.
func xorEncode(buf []byte, vals []float64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	if len(vals) == 0 {
		return buf
	}
	w := bitWriter{}
	prev := math.Float64bits(vals[0])
	w.writeBits(prev, 64)
	lz, tz := -1, -1 // current window; -1 = none yet
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		x := prev ^ cur
		prev = cur
		if x == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		l := bits.LeadingZeros64(x)
		if l > 31 {
			l = 31 // 5-bit field
		}
		t := bits.TrailingZeros64(x)
		if lz >= 0 && l >= lz && t >= tz {
			w.writeBit(0)
			w.writeBits(x>>uint(tz), uint(64-lz-tz))
			continue
		}
		w.writeBit(1)
		m := 64 - l - t
		w.writeBits(uint64(l), 5)
		w.writeBits(uint64(m-1), 6)
		w.writeBits(x>>uint(t), uint(m))
		lz, tz = l, t
	}
	stream := w.finish()
	buf = binary.AppendUvarint(buf, uint64(len(stream)))
	return append(buf, stream...)
}

// xorDecode reads a float block produced by xorEncode.
func xorDecode(r *byteReader) ([]float64, error) {
	n := r.uvarint()
	if r.err != nil {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	streamLen := r.uvarint()
	if r.err != nil || streamLen > uint64(r.remaining()) {
		return nil, ErrCorrupt
	}
	br := bitReader{buf: r.take(int(streamLen))}
	// The first value costs 64 bits and every later one at least 1.
	if int64(br.bitsLeft()) < 64+int64(n-1) {
		return nil, ErrCorrupt
	}
	out := make([]float64, n)
	prev := br.readBits(64)
	out[0] = math.Float64frombits(prev)
	lz, tz := -1, -1
	for i := uint64(1); i < n; i++ {
		if br.readBit() == 0 {
			out[i] = math.Float64frombits(prev)
			continue
		}
		if br.readBit() == 0 {
			if lz < 0 {
				return nil, ErrCorrupt // window reuse before any window set
			}
			x := br.readBits(uint(64-lz-tz)) << uint(tz)
			prev ^= x
		} else {
			l := int(br.readBits(5))
			m := int(br.readBits(6)) + 1
			t := 64 - l - m
			if t < 0 {
				return nil, ErrCorrupt
			}
			x := br.readBits(uint(m)) << uint(t)
			prev ^= x
			lz, tz = l, t
		}
		if br.fail {
			return nil, ErrCorrupt
		}
		out[i] = math.Float64frombits(prev)
	}
	if br.fail {
		return nil, ErrCorrupt
	}
	return out, nil
}

// ---- string dictionary ----

// dictBuilder assigns dense ids to strings in first-seen order. Car/session
// ids repeat across every round a car stays visible, so a per-chunk
// dictionary turns ~16-byte ids into 1-2 byte references.
type dictBuilder struct {
	ids  map[string]uint64
	strs []string
}

func (d *dictBuilder) id(s string) uint64 {
	if d.ids == nil {
		d.ids = make(map[string]uint64)
	}
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint64(len(d.strs))
	d.ids[s] = id
	d.strs = append(d.strs, s)
	return id
}

func (d *dictBuilder) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(d.strs)))
	for _, s := range d.strs {
		buf = appendString(buf, s)
	}
	return buf
}

func dictDecode(r *byteReader) ([]string, error) {
	n := r.uvarint()
	// Every dictionary entry costs at least one byte (its length prefix).
	if r.err != nil || n > uint64(r.remaining()) {
		return nil, ErrCorrupt
	}
	strs := make([]string, n)
	for i := range strs {
		strs[i] = r.str()
	}
	if r.err != nil {
		return nil, r.err
	}
	return strs, nil
}

func dictRef(strs []string, id uint64) (string, error) {
	if id >= uint64(len(strs)) {
		return "", ErrCorrupt
	}
	return strs[id], nil
}
