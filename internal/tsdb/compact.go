// Compaction and its crash-safety story.
//
// Compact streams every sealed segment into one merged file named for the
// full seal-sequence range it covers (e.g. 00000001-00000007.seg), syncs
// and renames it, then deletes the inputs. A crash at any point is safe:
// before the rename the tmp file is ignored on open; after it, any input
// whose range the merged file covers is detected as replaced and removed.
// Input file handles stay open (in the graveyard) until the DB closes so
// concurrent iterators keep reading the data they snapshotted.

package tsdb

import (
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Compact merges all sealed segments into one. It is also triggered in
// the background when the segment count reaches CompactMinSegments.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	if db.opts.ReadOnly {
		return ErrReadOnly
	}
	return db.compactLocked()
}

func (db *DB) compactLocked() error {
	if len(db.segs) < 2 {
		return nil
	}
	t0 := time.Now()
	lo := db.segs[0].lo
	hi := db.segs[len(db.segs)-1].hi
	path := filepath.Join(db.segDir(), segFileName(lo, hi))
	sw, err := newSegmentWriter(path, db.opts.ChunkRows)
	if err != nil {
		return err
	}
	// Union of series, ascending; per series the segments are already in
	// time order (seal order + the monotonic append invariant).
	set := make(map[int]bool)
	for _, sr := range db.segs {
		for _, s := range sr.series {
			set[s] = true
		}
	}
	series := make([]int, 0, len(set))
	for s := range set {
		series = append(series, s)
	}
	sort.Ints(series)
	for _, s := range series {
		for _, sr := range db.segs {
			for _, e := range sr.bySeries[s] {
				rows, err := sr.chunk(e)
				if err != nil {
					return err
				}
				if err := sw.add(s, rows); err != nil {
					return err
				}
			}
		}
	}
	if err := sw.finish(); err != nil {
		return err
	}
	merged, err := openSegment(path, lo, hi)
	if err != nil {
		return err
	}
	for _, sr := range db.segs {
		os.Remove(sr.path)
		db.graveyard = append(db.graveyard, sr)
	}
	db.segs = []*segmentReader{merged}
	db.m.compactDur.ObserveDuration(time.Since(t0))
	db.updateGauges()
	return nil
}
