// The write-ahead log protecting the in-memory head.
//
// Layout:
//
//	magic "TSDBWAL1" (8 bytes) ‖ seq u64
//	record*: len u32 ‖ crc32(payload) u32 ‖ payload (one row, row.go codec)
//
// seq is the seal sequence number the head will become. Sealing writes the
// segment durably FIRST and only then starts a fresh WAL with seq+1, so a
// crash between the two leaves a WAL whose seq names an existing segment —
// recovery detects that and discards the stale WAL instead of replaying
// duplicates.
//
// Appends are buffered; commit() flushes and (per the sync policy) fsyncs,
// so one fsync covers a whole ping round — the fsync-batched write path.
// Recovery replays records until the first bad length/CRC, truncates the
// torn tail, and resumes appending from there.

package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const walMagic = "TSDBWAL1"

const walHeaderSize = 16

// maxWALRecord bounds a record's payload length during recovery so a
// corrupt length prefix cannot drive a giant allocation.
const maxWALRecord = 1 << 24

type walWriter struct {
	f       *os.File
	bw      *bufio.Writer
	seq     uint64
	bytes   uint64 // bytes appended (records only)
	rows    uint64
	scratch []byte
}

// createWAL starts a fresh WAL (truncating any existing file) and makes
// its header durable.
func createWAL(path string, seq uint64) (*walWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), seq: seq}, nil
}

func (w *walWriter) append(row *Row) error {
	w.scratch = appendRowBinary(w.scratch[:0], row)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(w.scratch)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(w.scratch))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(w.scratch); err != nil {
		return err
	}
	w.bytes += uint64(8 + len(w.scratch))
	w.rows++
	return nil
}

func (w *walWriter) flush() error { return w.bw.Flush() }

func (w *walWriter) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *walWriter) close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// walScanResult is what recovery learned from an existing WAL file.
type walScanResult struct {
	seq      uint64
	rows     []Row
	goodSize int64 // file offset after the last intact record
	torn     bool  // a truncated/corrupt tail was dropped
}

// scanWAL reads every intact record. It returns os.ErrNotExist if the file
// is missing and ErrCorrupt only if the header itself is unreadable.
func scanWAL(path string) (*walScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("tsdb: %s: wal header: %w", path, ErrCorrupt)
	}
	if string(hdr[:8]) != walMagic {
		return nil, fmt.Errorf("tsdb: %s: wal magic: %w", path, ErrCorrupt)
	}
	res := &walScanResult{seq: binary.LittleEndian.Uint64(hdr[8:]), goodSize: walHeaderSize}
	var rec [8]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			res.torn = err != io.EOF
			return res, nil
		}
		n := binary.LittleEndian.Uint32(rec[0:])
		crc := binary.LittleEndian.Uint32(rec[4:])
		if n > maxWALRecord {
			res.torn = true
			return res, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			res.torn = true
			return res, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			res.torn = true
			return res, nil
		}
		row, err := decodeRowBinary(payload)
		if err != nil {
			res.torn = true
			return res, nil
		}
		if len(res.rows) >= maxRowsPerWAL {
			res.torn = true
			return res, nil
		}
		res.rows = append(res.rows, row)
		res.goodSize += int64(8 + n)
	}
}

// resumeWAL opens an existing WAL for appending after recovery, truncating
// any torn tail first.
func resumeWAL(path string, res *walScanResult) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(res.goodSize); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(res.goodSize, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{
		f:     f,
		bw:    bufio.NewWriterSize(f, 1<<16),
		seq:   res.seq,
		bytes: uint64(res.goodSize - walHeaderSize),
		rows:  uint64(len(res.rows)),
	}, nil
}
