// Observability wiring. All handles come from internal/obs and are
// nil-safe, so the store instruments unconditionally and pays nothing when
// no registry is attached.

package tsdb

import "repro/internal/obs"

type metrics struct {
	rows           *obs.Counter
	gapRows        *obs.Counter
	walBytes       *obs.Counter // tsdb_bytes_written_total{kind="wal"}
	segBytes       *obs.Counter // tsdb_bytes_written_total{kind="segment"}
	retentionDrops *obs.Counter
	walFsync       *obs.Histogram
	compactDur     *obs.Histogram
	segments       *obs.Gauge
	headRows       *obs.Gauge
	bytesPerRow    *obs.Gauge // sealed bytes per row of the latest segment
	ratio          *obs.Gauge // raw (WAL payload) bytes / sealed bytes
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		rows:           r.Counter("tsdb_rows_total"),
		gapRows:        r.Counter("tsdb_gap_rows_total"),
		walBytes:       r.Counter("tsdb_bytes_written_total", obs.L("kind", "wal")),
		segBytes:       r.Counter("tsdb_bytes_written_total", obs.L("kind", "segment")),
		retentionDrops: r.Counter("tsdb_retention_dropped_segments_total"),
		walFsync:       r.Histogram("tsdb_wal_fsync_seconds", nil),
		compactDur:     r.Histogram("tsdb_compaction_seconds", nil),
		segments:       r.Gauge("tsdb_segments"),
		headRows:       r.Gauge("tsdb_head_rows"),
		bytesPerRow:    r.Gauge("tsdb_segment_bytes_per_row"),
		ratio:          r.Gauge("tsdb_compression_ratio"),
	}
}
