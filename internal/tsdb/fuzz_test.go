package tsdb

import (
	"math/rand"
	"testing"
)

// FuzzCodec exercises every decoder in the codec stack with arbitrary
// bytes. Invariants:
//
//   - no decoder may panic or over-allocate, whatever the input;
//   - any input decodeRowBinary accepts must re-encode to the exact same
//     bytes (the row codec is canonical);
//   - any input decodeChunk accepts must survive encode→decode unchanged.
//
// The first byte routes to a decoder so one target covers the whole stack
// (the CI fuzz step runs a single -fuzz=FuzzCodec pattern).
func FuzzCodec(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	rows := randomRows(rng, 3, 64, 0)
	f.Add(append([]byte{0}, encodeChunk(rows)...))
	f.Add(append([]byte{1}, appendRowBinary(nil, &rows[0])...))
	f.Add(append([]byte{2}, timesEncode(nil, []int64{0, 5, 10, 15})...))
	f.Add(append([]byte{3}, xorEncode(nil, []float64{1.0, 1.1, 1.1})...))
	var d dictBuilder
	d.id("UberX")
	d.id("car-1")
	f.Add(append([]byte{4}, d.encode(nil)...))
	f.Add([]byte{0})
	f.Add([]byte{1, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		op, payload := data[0], data[1:]
		switch op % 5 {
		case 0:
			got, err := decodeChunk(payload, 3)
			if err != nil {
				return
			}
			re := encodeChunk(got)
			back, err := decodeChunk(re, 3)
			if err != nil {
				t.Fatalf("re-encoded chunk failed to decode: %v", err)
			}
			if len(back) != len(got) {
				t.Fatalf("chunk re-encode changed row count: %d != %d", len(back), len(got))
			}
			var a, b []byte
			for i := range got {
				a = appendRowBinary(a[:0], &got[i])
				b = appendRowBinary(b[:0], &back[i])
				if string(a) != string(b) {
					t.Fatalf("chunk re-encode changed row %d", i)
				}
			}
		case 1:
			row, err := decodeRowBinary(payload)
			if err != nil {
				return
			}
			if re := appendRowBinary(nil, &row); string(re) != string(payload) {
				t.Fatalf("row codec not canonical:\n in %x\nout %x", payload, re)
			}
		case 2:
			r := &byteReader{b: payload}
			if ts, err := timesDecode(r); err == nil && len(ts) > 0 {
				re := timesEncode(nil, ts)
				if got, err := timesDecode(&byteReader{b: re}); err != nil || len(got) != len(ts) {
					t.Fatalf("times re-encode broke: %v", err)
				}
			}
		case 3:
			r := &byteReader{b: payload}
			if vs, err := xorDecode(r); err == nil && len(vs) > 0 {
				re := xorEncode(nil, vs)
				if got, err := xorDecode(&byteReader{b: re}); err != nil || len(got) != len(vs) {
					t.Fatalf("xor re-encode broke: %v", err)
				}
			}
		case 4:
			dictDecode(&byteReader{b: payload})
		}
	})
}
