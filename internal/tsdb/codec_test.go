package tsdb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64, 5, -300} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag(%d) round-tripped to %d", v, got)
		}
	}
}

func TestTimesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]int64{
		nil,
		{0},
		{42},
		{-7, -7, -7},
		{0, 5, 10, 15, 20}, // the ping clock: constant delta
		{100, 95, 200, 200, 201},
	}
	irregular := []int64{rng.Int63n(1000)}
	for i := 0; i < 500; i++ {
		irregular = append(irregular, irregular[len(irregular)-1]+rng.Int63n(100)-20)
	}
	cases = append(cases, irregular)
	for _, ts := range cases {
		buf := timesEncode(nil, ts)
		got, err := timesDecode(&byteReader{b: buf})
		if err != nil {
			t.Fatalf("decode %v: %v", ts, err)
		}
		if len(got) == 0 && len(ts) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, ts) {
			t.Fatalf("times round trip: got %v want %v", got, ts)
		}
	}
	// Constant-delta series must approach one byte per timestamp.
	clock := make([]int64, 1000)
	for i := range clock {
		clock[i] = int64(i) * 5
	}
	buf := timesEncode(nil, clock)
	if len(buf) > 1100 {
		t.Fatalf("5s clock encoded to %d bytes for 1000 stamps; want ~1/stamp", len(buf))
	}
}

func TestXORRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := [][]float64{
		nil,
		{0},
		{1.5},
		{1, 1, 1, 1},
		{1.0, 1.1, 1.2, 1.2, 1.1, 2.5},
		{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)},
	}
	var walk []float64
	v := 37.7749
	for i := 0; i < 700; i++ {
		v += (rng.Float64() - 0.5) * 1e-3
		walk = append(walk, v)
	}
	cases = append(cases, walk)
	for ci, vals := range cases {
		buf := xorEncode(nil, vals)
		got, err := xorDecode(&byteReader{b: buf})
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("case %d: got %d values, want %d", ci, len(got), len(vals))
		}
		for i := range vals {
			// Bit-level equality: NaN payloads and signed zeros must survive.
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("case %d: value %d: got %x want %x",
					ci, i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
			}
		}
	}
	// Identical values (a flat surge column) must cost ~1 bit each.
	flat := make([]float64, 1000)
	for i := range flat {
		flat[i] = 1.0
	}
	buf := xorEncode(nil, flat)
	if len(buf) > 200 {
		t.Fatalf("flat column encoded to %d bytes for 1000 values", len(buf))
	}
}

func TestDictRoundTrip(t *testing.T) {
	var d dictBuilder
	ids := []uint64{d.id("UberX"), d.id("car-1"), d.id("UberX"), d.id(""), d.id("car-1")}
	want := []uint64{0, 1, 0, 2, 1}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("dict ids = %v, want %v", ids, want)
	}
	buf := d.encode(nil)
	strs, err := dictDecode(&byteReader{b: buf})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(strs, []string{"UberX", "car-1", ""}) {
		t.Fatalf("decoded dict = %q", strs)
	}
	if _, err := dictRef(strs, 3); err == nil {
		t.Fatal("out-of-range dict ref did not error")
	}
}

// randomRows builds a plausible campaign slice for one series: mostly
// observations with a few products and moving cars, some gaps.
func randomRows(rng *rand.Rand, series, n int, start int64) []Row {
	rows := make([]Row, 0, n)
	t := start
	lat, lng := 37.77, -122.42
	for i := 0; i < n; i++ {
		t += 5
		if rng.Intn(40) == 0 {
			rows = append(rows, Row{Time: t, Series: series, Gap: true, Reason: "http 503"})
			continue
		}
		row := Row{Time: t, Series: series}
		for p := 0; p < 1+rng.Intn(4); p++ {
			obs := TypeObs{
				Name:  []string{"UberX", "UberXL", "UberBLACK", "UberSUV"}[p],
				Surge: 1 + float64(rng.Intn(15))*0.1,
				EWT:   float64(100 + rng.Intn(400)),
			}
			for c := 0; c < rng.Intn(9); c++ {
				lat += (rng.Float64() - 0.5) * 1e-4
				lng += (rng.Float64() - 0.5) * 1e-4
				obs.Cars = append(obs.Cars, Car{
					ID:  []string{"a1f", "b2e", "c3d", "d4c", "e5b", "f6a", "07f", "18e"}[c],
					Lat: lat, Lng: lng,
				})
			}
			row.Types = append(row.Types, obs)
		}
		rows = append(rows, row)
	}
	return rows
}

func TestChunkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := randomRows(rng, 7, 400, 1000)
	payload := encodeChunk(rows)
	got, err := decodeChunk(payload, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("chunk round trip mismatch: got %d rows want %d", len(got), len(rows))
	}
	// Byte-equality through the canonical row encoding.
	for i := range rows {
		a := appendRowBinary(nil, &rows[i])
		b := appendRowBinary(nil, &got[i])
		if string(a) != string(b) {
			t.Fatalf("row %d not byte-equal after chunk round trip", i)
		}
	}
}

// TestChunkDecodeNeverPanics flips/truncates chunk bytes every which way;
// decode must return an error or a valid result, never panic.
func TestChunkDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := randomRows(rng, 0, 60, 0)
	payload := encodeChunk(rows)
	for i := 0; i < len(payload); i++ {
		for _, bit := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), payload...)
			mut[i] ^= bit
			decodeChunk(mut, 0) // must not panic
		}
	}
	for i := 0; i < len(payload); i += 7 {
		decodeChunk(payload[:i], 0)
	}
}

func TestRowBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, row := range randomRows(rng, 11, 100, 50) {
		buf := appendRowBinary(nil, &row)
		got, err := decodeRowBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, row) {
			t.Fatalf("row binary round trip mismatch:\n got %+v\nwant %+v", got, row)
		}
	}
	if _, err := decodeRowBinary([]byte{0x80}); err == nil {
		t.Fatal("truncated row decoded without error")
	}
}
