// Sealed immutable segment files.
//
// Layout:
//
//	magic "TSDBSEG1"                          (8 bytes)
//	chunk*: payload ‖ crc32(payload)          (offsets recorded in index)
//	index:  per-chunk (series, offset, len, minT, maxT, rows)
//	footer: indexOff u64 ‖ indexLen u32 ‖ indexCRC u32 ‖
//	        fileCRC u32 ‖ magic u32           (24 bytes, little-endian)
//
// fileCRC covers every byte before it, so tsdbtool verify detects a single
// flipped byte anywhere in the file; per-chunk CRCs localize the damage
// and protect normal reads without re-hashing the whole file.
//
// The index is the sparse time index: chunks are ≤ chunkRows rows, so
// Query(series, from, to) binary-searches the per-series chunk list and
// decodes only chunks overlapping [from, to).
//
// File names are <lo>-<hi>.seg where lo..hi is the range of seal sequence
// numbers the file covers (lo == hi for a freshly sealed head; wider after
// compaction). A file whose range is contained in another's is an
// already-replaced compaction input left behind by a crash and is ignored.

package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	segMagic    = "TSDBSEG1"
	footerMagic = uint32(0x42445354) // "TSDB"
	footerSize  = 24
)

type chunkEntry struct {
	series     int
	offset     uint64 // of the payload, from file start
	length     uint64 // payload bytes (CRC excluded)
	minT, maxT int64
	rows       uint64
}

// ---- writer ----

// crcFileWriter tracks a running CRC and offset over everything written.
type crcFileWriter struct {
	w   *os.File
	buf []byte
	crc uint32
	off uint64
}

func (c *crcFileWriter) write(p []byte) error {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	c.off += uint64(len(p))
	c.buf = append(c.buf, p...)
	if len(c.buf) >= 1<<20 {
		return c.flush()
	}
	return nil
}

func (c *crcFileWriter) flush() error {
	if len(c.buf) == 0 {
		return nil
	}
	_, err := c.w.Write(c.buf)
	c.buf = c.buf[:0]
	return err
}

// segmentWriter streams per-series row runs into a segment file. Rows for
// a series must arrive in time order, and series in ascending order.
type segmentWriter struct {
	cw        *crcFileWriter
	path, tmp string
	chunkRows int
	entries   []chunkEntry
	curSeries int
	buf       []Row
	rows      uint64
}

func newSegmentWriter(path string, chunkRows int) (*segmentWriter, error) {
	if chunkRows <= 0 {
		chunkRows = defaultChunkRows
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	sw := &segmentWriter{
		cw:        &crcFileWriter{w: f},
		path:      path,
		tmp:       tmp,
		chunkRows: chunkRows,
		curSeries: -1,
	}
	if err := sw.cw.write([]byte(segMagic)); err != nil {
		f.Close()
		return nil, err
	}
	return sw, nil
}

func (sw *segmentWriter) add(series int, rows []Row) error {
	if series != sw.curSeries {
		if series < sw.curSeries {
			return fmt.Errorf("tsdb: segment writer: series out of order")
		}
		if err := sw.flushChunk(); err != nil {
			return err
		}
		sw.curSeries = series
	}
	for len(rows) > 0 {
		n := sw.chunkRows - len(sw.buf)
		if n > len(rows) {
			n = len(rows)
		}
		sw.buf = append(sw.buf, rows[:n]...)
		rows = rows[n:]
		if len(sw.buf) >= sw.chunkRows {
			if err := sw.flushChunk(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (sw *segmentWriter) flushChunk() error {
	if len(sw.buf) == 0 {
		return nil
	}
	payload := encodeChunk(sw.buf)
	e := chunkEntry{
		series: sw.curSeries,
		offset: sw.cw.off,
		length: uint64(len(payload)),
		minT:   sw.buf[0].Time,
		maxT:   sw.buf[len(sw.buf)-1].Time,
		rows:   uint64(len(sw.buf)),
	}
	if err := sw.cw.write(payload); err != nil {
		return err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(payload))
	if err := sw.cw.write(crcb[:]); err != nil {
		return err
	}
	sw.entries = append(sw.entries, e)
	sw.rows += uint64(len(sw.buf))
	sw.buf = sw.buf[:0]
	return nil
}

// finish writes the index and footer, fsyncs, and atomically renames the
// temp file into place.
func (sw *segmentWriter) finish() (retErr error) {
	defer func() {
		if retErr != nil {
			sw.cw.w.Close()
			os.Remove(sw.tmp)
		}
	}()
	if err := sw.flushChunk(); err != nil {
		return err
	}
	var idx []byte
	idx = binary.AppendUvarint(idx, uint64(len(sw.entries)))
	for _, e := range sw.entries {
		idx = binary.AppendUvarint(idx, uint64(e.series))
		idx = binary.AppendUvarint(idx, e.offset)
		idx = binary.AppendUvarint(idx, e.length)
		idx = binary.AppendUvarint(idx, zigzag(e.minT))
		idx = binary.AppendUvarint(idx, zigzag(e.maxT))
		idx = binary.AppendUvarint(idx, e.rows)
	}
	idxOff := sw.cw.off
	if err := sw.cw.write(idx); err != nil {
		return err
	}
	var ftr [footerSize]byte
	binary.LittleEndian.PutUint64(ftr[0:], idxOff)
	binary.LittleEndian.PutUint32(ftr[8:], uint32(len(idx)))
	binary.LittleEndian.PutUint32(ftr[12:], crc32.ChecksumIEEE(idx))
	// The file CRC covers everything up to and including the first 16
	// footer bytes; the final 8 bytes are the CRC itself plus the magic.
	if err := sw.cw.write(ftr[:16]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(ftr[16:], sw.cw.crc)
	binary.LittleEndian.PutUint32(ftr[20:], footerMagic)
	sw.cw.buf = append(sw.cw.buf, ftr[16:]...)
	if err := sw.cw.flush(); err != nil {
		return err
	}
	if err := sw.cw.w.Sync(); err != nil {
		return err
	}
	if err := sw.cw.w.Close(); err != nil {
		return err
	}
	if err := os.Rename(sw.tmp, sw.path); err != nil {
		return err
	}
	syncDir(filepath.Dir(sw.path))
	return nil
}

// syncDir fsyncs a directory so renames within it are durable;
// best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// ---- reader ----

type segmentReader struct {
	f      *os.File
	path   string
	lo, hi uint64 // seal-sequence range from the file name
	size   int64
	rows   uint64
	minT   int64
	maxT   int64
	// bySeries maps series → its chunk entries in time order.
	bySeries map[int][]chunkEntry
	series   []int // sorted
}

// openSegment reads and validates the footer and index. Chunk payloads are
// read lazily; their CRCs are checked on every read.
func openSegment(path string, lo, hi uint64) (*segmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sr := &segmentReader{f: f, path: path, lo: lo, hi: hi, bySeries: make(map[int][]chunkEntry)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	sr.size = st.Size()
	if sr.size < int64(len(segMagic))+footerSize {
		f.Close()
		return nil, fmt.Errorf("tsdb: %s: too short: %w", path, ErrCorrupt)
	}
	var ftr [footerSize]byte
	if _, err := f.ReadAt(ftr[:], sr.size-footerSize); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(ftr[20:]) != footerMagic {
		f.Close()
		return nil, fmt.Errorf("tsdb: %s: bad footer magic: %w", path, ErrCorrupt)
	}
	idxOff := binary.LittleEndian.Uint64(ftr[0:])
	idxLen := binary.LittleEndian.Uint32(ftr[8:])
	idxCRC := binary.LittleEndian.Uint32(ftr[12:])
	if idxOff < uint64(len(segMagic)) || idxOff+uint64(idxLen) != uint64(sr.size)-footerSize {
		f.Close()
		return nil, fmt.Errorf("tsdb: %s: bad index bounds: %w", path, ErrCorrupt)
	}
	idx := make([]byte, idxLen)
	if _, err := f.ReadAt(idx, int64(idxOff)); err != nil {
		f.Close()
		return nil, err
	}
	if crc32.ChecksumIEEE(idx) != idxCRC {
		f.Close()
		return nil, fmt.Errorf("tsdb: %s: index CRC mismatch: %w", path, ErrCorrupt)
	}
	r := &byteReader{b: idx}
	n := r.uvarint()
	if r.err != nil || n > uint64(len(idx)) {
		f.Close()
		return nil, fmt.Errorf("tsdb: %s: bad index: %w", path, ErrCorrupt)
	}
	sr.minT, sr.maxT = int64(1)<<62, -(int64(1) << 62)
	for i := uint64(0); i < n; i++ {
		e := chunkEntry{
			series: int(r.uvarint()),
			offset: r.uvarint(),
			length: r.uvarint(),
			minT:   r.varint(),
			maxT:   r.varint(),
			rows:   r.uvarint(),
		}
		if r.err != nil || e.offset+e.length+4 > idxOff || e.rows == 0 {
			f.Close()
			return nil, fmt.Errorf("tsdb: %s: bad index entry: %w", path, ErrCorrupt)
		}
		if _, seen := sr.bySeries[e.series]; !seen {
			sr.series = append(sr.series, e.series)
		}
		sr.bySeries[e.series] = append(sr.bySeries[e.series], e)
		sr.rows += e.rows
		if e.minT < sr.minT {
			sr.minT = e.minT
		}
		if e.maxT > sr.maxT {
			sr.maxT = e.maxT
		}
	}
	sort.Ints(sr.series)
	return sr, nil
}

// chunk reads, CRC-checks, and decodes one chunk.
func (sr *segmentReader) chunk(e chunkEntry) ([]Row, error) {
	buf := make([]byte, e.length+4)
	if _, err := sr.f.ReadAt(buf, int64(e.offset)); err != nil {
		return nil, fmt.Errorf("tsdb: %s: read chunk at %d: %w", sr.path, e.offset, err)
	}
	payload := buf[:e.length]
	want := binary.LittleEndian.Uint32(buf[e.length:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("tsdb: %s: chunk CRC mismatch at offset %d: %w", sr.path, e.offset, ErrCorrupt)
	}
	rows, err := decodeChunk(payload, e.series)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %s: chunk at offset %d: %w", sr.path, e.offset, err)
	}
	if uint64(len(rows)) != e.rows {
		return nil, fmt.Errorf("tsdb: %s: chunk at offset %d: row count mismatch: %w", sr.path, e.offset, ErrCorrupt)
	}
	return rows, nil
}

// overlapping returns the chunk entries of series that intersect [from, to).
func (sr *segmentReader) overlapping(series int, from, to int64) []chunkEntry {
	entries := sr.bySeries[series]
	// Entries are in time order; find the first with maxT >= from.
	i := sort.Search(len(entries), func(i int) bool { return entries[i].maxT >= from })
	j := i
	for j < len(entries) && entries[j].minT < to {
		j++
	}
	return entries[i:j]
}

func (sr *segmentReader) close() error { return sr.f.Close() }

// verifyFileCRC re-reads the whole file and checks the footer CRC: the
// single-flipped-byte detector behind `tsdbtool verify`.
func (sr *segmentReader) verifyFileCRC() error {
	if _, err := sr.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	h := crc32.NewIEEE()
	if _, err := io.CopyN(h, sr.f, sr.size-8); err != nil {
		return err
	}
	var tail [8]byte
	if _, err := sr.f.ReadAt(tail[:], sr.size-8); err != nil {
		return err
	}
	if h.Sum32() != binary.LittleEndian.Uint32(tail[:4]) {
		return fmt.Errorf("tsdb: %s: file CRC mismatch: %w", sr.path, ErrCorrupt)
	}
	return nil
}

// ---- file naming ----

func segFileName(lo, hi uint64) string { return fmt.Sprintf("%08d-%08d.seg", lo, hi) }

// parseSegName parses "<lo>-<hi>.seg"; ok is false for anything else.
func parseSegName(name string) (lo, hi uint64, ok bool) {
	base, found := strings.CutSuffix(name, ".seg")
	if !found {
		return 0, 0, false
	}
	loS, hiS, found := strings.Cut(base, "-")
	if !found {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(loS, "%d", &lo); err != nil {
		return 0, 0, false
	}
	if _, err := fmt.Sscanf(hiS, "%d", &hi); err != nil {
		return 0, 0, false
	}
	return lo, hi, lo <= hi
}
