// Package tsdb is an embedded append-only time-series store purpose-built
// for measurement campaigns: the paper's workflow is "collect hundreds of
// gigabytes of pingClient responses for four weeks, analyze offline", and
// at that scale storage footprint, crash safety, and query speed dominate.
//
// A DB is a directory:
//
//	META.json   version + opaque application header (the campaign header)
//	wal/        fsync-batched write-ahead log guarding the in-memory head
//	seg/        sealed immutable segments: per-series columnar chunks
//	            (delta-of-delta timestamps, Gorilla XOR floats, dictionary
//	            car ids), a sparse time index, and CRC32 footers
//
// Writes append to the WAL and an in-memory head; when the head reaches
// HeadMaxRows it is sealed into a segment and the WAL rotates. Opening a
// crashed DB replays the WAL, so acknowledged (committed) rows survive.
// Query(series, from, to) walks only the chunks overlapping the window;
// background compaction merges small segments and an optional retention
// policy drops segments past a time horizon.
package tsdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FormatVersion is the on-disk format version recorded in META.json.
const FormatVersion = 1

// ErrOutOfOrder is returned by Append when a row's timestamp precedes the
// series' last appended timestamp (campaign time is monotonic).
var ErrOutOfOrder = errors.New("tsdb: append out of time order")

// ErrReadOnly is returned by mutating operations on a read-only DB.
var ErrReadOnly = errors.New("tsdb: database is read-only")

// Options configures Open. The zero value is a writable DB with defaults.
type Options struct {
	// ReadOnly opens without creating or mutating anything on disk (no WAL
	// truncation, no sealing); used by verification and offline analysis.
	ReadOnly bool
	// Extra is an opaque application blob stored in META.json on first
	// creation (the campaign recording header).
	Extra json.RawMessage
	// HeadMaxRows seals the head into a segment when it reaches this many
	// rows. Default 65536 (~127 campaign rounds of 43 clients × 12 rows).
	HeadMaxRows int
	// ChunkRows bounds rows per columnar chunk (the sparse-index
	// granularity). Default 512.
	ChunkRows int
	// SyncEveryCommits fsyncs the WAL on every Nth Commit (default 1:
	// every commit, i.e. one fsync per ping round). Negative disables
	// periodic fsync; sealing and Close still sync.
	SyncEveryCommits int
	// CompactMinSegments triggers background compaction when the sealed
	// segment count reaches it. Default 8; negative disables.
	CompactMinSegments int
	// RetainSeconds drops sealed segments whose newest row is older than
	// the store's newest row by more than this. 0 keeps everything.
	RetainSeconds int64
	// Metrics receives tsdb gauges/histograms; nil disables (all obs
	// handles are nil-safe).
	Metrics *obs.Registry
}

func (o *Options) defaults() {
	if o.HeadMaxRows == 0 {
		o.HeadMaxRows = 65536
	}
	if o.ChunkRows == 0 {
		o.ChunkRows = defaultChunkRows
	}
	if o.SyncEveryCommits == 0 {
		o.SyncEveryCommits = 1
	}
	if o.CompactMinSegments == 0 {
		o.CompactMinSegments = 8
	}
}

// Meta is the content of META.json.
type Meta struct {
	Version int             `json:"version"`
	Extra   json.RawMessage `json:"extra,omitempty"`
}

// DB is one open store. All methods are safe for concurrent use.
type DB struct {
	dir  string
	opts Options
	m    *metrics

	mu        sync.Mutex
	meta      Meta
	segs      []*segmentReader // sorted by lo, non-overlapping
	graveyard []*segmentReader // replaced/retired files kept open for live iterators
	wal       *walWriter
	head      map[int][]Row
	headRows  int
	headRaw   uint64 // WAL payload bytes backing the head (compression baseline)
	lastTime  map[int]int64
	recovered int
	commits   uint64
	closed    bool

	compacting atomic.Bool
	wg         sync.WaitGroup
}

func (db *DB) segDir() string  { return filepath.Join(db.dir, "seg") }
func (db *DB) walPath() string { return filepath.Join(db.dir, "wal", "head.wal") }

// IsStore reports whether dir looks like a tsdb store (has a META.json).
func IsStore(dir string) bool {
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(dir, "META.json"))
	return err == nil
}

// Open opens (creating if needed, unless read-only) the store at dir and
// replays any write-ahead log left by a crash.
func Open(dir string, opts Options) (*DB, error) {
	opts.defaults()
	db := &DB{
		dir:      dir,
		opts:     opts,
		m:        newMetrics(opts.Metrics),
		head:     make(map[int][]Row),
		lastTime: make(map[int]int64),
	}
	if !opts.ReadOnly {
		for _, d := range []string{dir, db.segDir(), filepath.Join(dir, "wal")} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return nil, err
			}
		}
	}
	if err := db.loadMeta(); err != nil {
		return nil, err
	}
	if err := db.loadSegments(); err != nil {
		db.closeAll()
		return nil, err
	}
	if err := db.recoverWAL(); err != nil {
		db.closeAll()
		return nil, err
	}
	db.updateGauges()
	return db, nil
}

func (db *DB) loadMeta() error {
	path := filepath.Join(db.dir, "META.json")
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if db.opts.ReadOnly {
			return fmt.Errorf("tsdb: %s: not a store (no META.json)", db.dir)
		}
		db.meta = Meta{Version: FormatVersion, Extra: db.opts.Extra}
		blob, err := json.Marshal(db.meta)
		if err != nil {
			return err
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, blob, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			return err
		}
		syncDir(db.dir)
		return nil
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &db.meta); err != nil {
		return fmt.Errorf("tsdb: %s: META.json: %w", db.dir, err)
	}
	if db.meta.Version != FormatVersion {
		return fmt.Errorf("tsdb: %s: unsupported format version %d", db.dir, db.meta.Version)
	}
	return nil
}

// listSegFiles returns the live segment files in dir sorted by lo, after
// dropping files whose seal range another file covers (compaction inputs a
// crash left behind). Covered files are deleted unless readOnly.
func listSegFiles(segDir string, readOnly bool) ([]segFile, error) {
	ents, err := os.ReadDir(segDir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var files []segFile
	for _, e := range ents {
		if lo, hi, ok := parseSegName(e.Name()); ok {
			files = append(files, segFile{filepath.Join(segDir, e.Name()), lo, hi})
		}
	}
	live := files[:0]
	for _, f := range files {
		covered := false
		for _, g := range files {
			if g.path != f.path && g.lo <= f.lo && f.hi <= g.hi && (g.hi-g.lo) > (f.hi-f.lo) {
				covered = true
				break
			}
		}
		if covered {
			if !readOnly {
				os.Remove(f.path)
			}
			continue
		}
		live = append(live, f)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].lo < live[j].lo })
	for i := 1; i < len(live); i++ {
		if live[i].lo <= live[i-1].hi {
			return nil, fmt.Errorf("tsdb: overlapping segments %s and %s: %w",
				live[i-1].path, live[i].path, ErrCorrupt)
		}
	}
	return live, nil
}

type segFile struct {
	path   string
	lo, hi uint64
}

func (db *DB) loadSegments() error {
	files, err := listSegFiles(db.segDir(), db.opts.ReadOnly)
	if err != nil {
		return err
	}
	for _, f := range files {
		sr, err := openSegment(f.path, f.lo, f.hi)
		if err != nil {
			return err
		}
		db.segs = append(db.segs, sr)
	}
	return nil
}

func (db *DB) maxSealedSeq() uint64 {
	if len(db.segs) == 0 {
		return 0
	}
	return db.segs[len(db.segs)-1].hi
}

// noteTime records a series' newest stored timestamp for the monotonic
// append check (t=0 is a valid campaign time, hence the presence map).
func (db *DB) noteTime(series int, t int64) {
	if last, ok := db.lastTime[series]; !ok || t > last {
		db.lastTime[series] = t
	}
}

func (db *DB) recoverWAL() error {
	for _, sr := range db.segs {
		for s, entries := range sr.bySeries {
			db.noteTime(s, entries[len(entries)-1].maxT)
		}
	}
	nextSeq := db.maxSealedSeq() + 1
	res, err := scanWAL(db.walPath())
	switch {
	case errors.Is(err, os.ErrNotExist):
		res = nil
	case err != nil:
		// A torn header means the crash happened during WAL creation,
		// before any record could have been acknowledged: start fresh.
		res = nil
	case res.seq <= db.maxSealedSeq():
		// Stale WAL: its head was already sealed durably, the crash hit
		// between segment rename and WAL rotation. Discard, no replay.
		res = nil
	}
	if res != nil {
		for _, row := range res.rows {
			db.head[row.Series] = append(db.head[row.Series], row)
			db.noteTime(row.Series, row.Time)
		}
		db.headRows = len(res.rows)
		if res.goodSize > walHeaderSize {
			db.headRaw = uint64(res.goodSize-walHeaderSize) - 8*uint64(len(res.rows))
		}
		db.recovered = len(res.rows)
		if res.seq >= nextSeq {
			nextSeq = res.seq
		}
	}
	if db.opts.ReadOnly {
		return nil
	}
	if res != nil {
		w, err := resumeWAL(db.walPath(), res)
		if err != nil {
			return err
		}
		db.wal = w
		return nil
	}
	w, err := createWAL(db.walPath(), nextSeq)
	if err != nil {
		return err
	}
	db.wal = w
	return nil
}

// Extra returns the application blob stored at creation.
func (db *DB) Extra() json.RawMessage { return db.meta.Extra }

// SetExtra atomically replaces the application blob in META.json. The
// live ingester uses it to grow the campaign header as new clients
// appear on the bus.
func (db *DB) SetExtra(extra json.RawMessage) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("tsdb: database closed")
	}
	if db.opts.ReadOnly {
		return ErrReadOnly
	}
	meta := db.meta
	meta.Extra = extra
	blob, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	path := filepath.Join(db.dir, "META.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(db.dir)
	db.meta = meta
	return nil
}

// SeriesLastTime returns the newest timestamp stored for a series (over
// sealed segments, recovered WAL rows, and the live head), or ok=false
// if the series has no rows. An at-least-once consumer uses it to skip
// redelivered rows.
func (db *DB) SeriesLastTime(series int) (int64, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.lastTime[series]
	return t, ok
}

// Recovered returns how many rows were replayed from the WAL at Open — the
// rows a crash would otherwise have lost.
func (db *DB) Recovered() int { return db.recovered }

// Append stores one row. Rows of a series must arrive in non-decreasing
// time order. The row is durable after the next Commit (or seal).
func (db *DB) Append(row Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("tsdb: database closed")
	}
	if db.opts.ReadOnly {
		return ErrReadOnly
	}
	if last, ok := db.lastTime[row.Series]; ok && row.Time < last {
		return fmt.Errorf("%w: series %d: %d < %d", ErrOutOfOrder, row.Series, row.Time, last)
	}
	before := db.wal.bytes
	if err := db.wal.append(&row); err != nil {
		return err
	}
	db.m.walBytes.Add(int64(db.wal.bytes - before))
	db.headRaw += db.wal.bytes - before - 8
	db.head[row.Series] = append(db.head[row.Series], row)
	db.lastTime[row.Series] = row.Time
	db.headRows++
	db.m.rows.Inc()
	if row.Gap {
		db.m.gapRows.Inc()
	}
	if db.headRows >= db.opts.HeadMaxRows {
		return db.sealLocked()
	}
	return nil
}

// Commit marks a batch boundary (the campaign calls it once per ping
// round): the WAL is flushed, and fsynced per the sync policy, making
// everything appended so far crash-durable.
func (db *DB) Commit() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed || db.opts.ReadOnly {
		return ErrReadOnly
	}
	db.commits++
	if db.opts.SyncEveryCommits > 0 && db.commits%uint64(db.opts.SyncEveryCommits) == 0 {
		t0 := time.Now()
		if err := db.wal.sync(); err != nil {
			return err
		}
		db.m.walFsync.ObserveDuration(time.Since(t0))
		return nil
	}
	return db.wal.flush()
}

// Seal flushes the in-memory head into a sealed segment.
func (db *DB) Seal() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed || db.opts.ReadOnly {
		return ErrReadOnly
	}
	return db.sealLocked()
}

func (db *DB) sealLocked() error {
	if db.headRows == 0 {
		return nil
	}
	seq := db.wal.seq
	path := filepath.Join(db.segDir(), segFileName(seq, seq))
	sw, err := newSegmentWriter(path, db.opts.ChunkRows)
	if err != nil {
		return err
	}
	for _, s := range sortedSeries(db.head) {
		if err := sw.add(s, db.head[s]); err != nil {
			return err
		}
	}
	if err := sw.finish(); err != nil {
		return err
	}
	sr, err := openSegment(path, seq, seq)
	if err != nil {
		return err
	}
	db.segs = append(db.segs, sr)
	db.m.segBytes.Add(sr.size)
	db.m.bytesPerRow.Set(float64(sr.size) / float64(sr.rows))
	if sr.size > 0 {
		db.m.ratio.Set(float64(db.headRaw) / float64(sr.size))
	}
	// The segment is durable; rotate the WAL.
	db.wal.close()
	w, err := createWAL(db.walPath(), seq+1)
	if err != nil {
		return err
	}
	db.wal = w
	db.head = make(map[int][]Row)
	db.headRows = 0
	db.headRaw = 0
	db.applyRetentionLocked()
	db.updateGauges()
	if db.opts.CompactMinSegments > 0 && len(db.segs) >= db.opts.CompactMinSegments &&
		db.compacting.CompareAndSwap(false, true) {
		db.wg.Add(1)
		go func() {
			defer db.wg.Done()
			defer db.compacting.Store(false)
			db.Compact()
		}()
	}
	return nil
}

func (db *DB) applyRetentionLocked() {
	if db.opts.RetainSeconds <= 0 {
		return
	}
	_, maxT, ok := db.boundsLocked()
	if !ok {
		return
	}
	cutoff := maxT - db.opts.RetainSeconds
	live := db.segs[:0]
	for _, sr := range db.segs {
		if sr.maxT < cutoff {
			os.Remove(sr.path)
			db.graveyard = append(db.graveyard, sr)
			db.m.retentionDrops.Inc()
			continue
		}
		live = append(live, sr)
	}
	db.segs = live
}

func sortedSeries(head map[int][]Row) []int {
	out := make([]int, 0, len(head))
	for s := range head {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func (db *DB) boundsLocked() (minT, maxT int64, ok bool) {
	minT, maxT = int64(1)<<62, -(int64(1) << 62)
	for _, sr := range db.segs {
		if sr.minT < minT {
			minT = sr.minT
		}
		if sr.maxT > maxT {
			maxT = sr.maxT
		}
		ok = true
	}
	for _, rows := range db.head {
		if len(rows) == 0 {
			continue
		}
		if t := rows[0].Time; t < minT {
			minT = t
		}
		if t := rows[len(rows)-1].Time; t > maxT {
			maxT = t
		}
		ok = true
	}
	return minT, maxT, ok
}

// Bounds returns the time range currently stored ([min, max], inclusive);
// ok is false for an empty store.
func (db *DB) Bounds() (minT, maxT int64, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.boundsLocked()
}

// Series returns the stored series ids, ascending.
func (db *DB) Series() []int {
	db.mu.Lock()
	defer db.mu.Unlock()
	set := make(map[int]bool)
	for _, sr := range db.segs {
		for _, s := range sr.series {
			set[s] = true
		}
	}
	for s, rows := range db.head {
		if len(rows) > 0 {
			set[s] = true
		}
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Stats summarizes the store.
type Stats struct {
	Segments     int
	SegmentBytes int64
	SegmentRows  int64
	HeadRows     int
	WALBytes     int64
	Recovered    int
	MinTime      int64
	MaxTime      int64
	HasData      bool
}

// Stats returns a point-in-time summary.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := Stats{Segments: len(db.segs), HeadRows: db.headRows, Recovered: db.recovered}
	for _, sr := range db.segs {
		st.SegmentBytes += sr.size
		st.SegmentRows += int64(sr.rows)
	}
	if db.wal != nil {
		st.WALBytes = int64(db.wal.bytes)
	}
	st.MinTime, st.MaxTime, st.HasData = db.boundsLocked()
	return st
}

func (db *DB) updateGauges() {
	db.m.segments.Set(float64(len(db.segs)))
	db.m.headRows.Set(float64(db.headRows))
}

func (db *DB) closeAll() {
	for _, sr := range db.segs {
		sr.close()
	}
	for _, sr := range db.graveyard {
		sr.close()
	}
	db.segs, db.graveyard = nil, nil
	if db.wal != nil {
		db.wal.close()
		db.wal = nil
	}
}

// Close seals any buffered head rows (so a cleanly closed store recovers
// nothing from the WAL) and releases all file handles.
func (db *DB) Close() error {
	db.wg.Wait() // let a background compaction finish
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	var err error
	if !db.opts.ReadOnly {
		err = db.sealLocked()
	}
	db.closeAll()
	db.closed = true
	return err
}
