// LiveTail: the streaming counterpart of Prober. Where Prober infers the
// surge partition from outside by probing the price API, LiveTail rides
// the surge.changes bus topic — every area's multiplier move as the
// engine commits it — and maintains the current city surge map plus each
// area's change series, with no polling and no API quota.

package surgemap

import (
	"fmt"
	"strings"

	"repro/internal/bus"
)

// LiveTail folds surge.changes events into a live multiplier map. Not
// safe for concurrent use: one goroutine feeds it (the tail loop).
type LiveTail struct {
	cur     []float64
	changes []int
	// lastTime is the newest event time applied.
	lastTime int64
	// series logs (time, multiplier) per area, for duration analysis.
	series [][]bus.Event
}

// NewLiveTail tracks numAreas areas, all starting at multiplier 1.
func NewLiveTail(numAreas int) *LiveTail {
	lt := &LiveTail{
		cur:     make([]float64, numAreas),
		changes: make([]int, numAreas),
		series:  make([][]bus.Event, numAreas),
	}
	for i := range lt.cur {
		lt.cur[i] = 1
	}
	return lt
}

// Apply folds one event in; events of other kinds or out-of-range areas
// are ignored. It reports whether the event changed the map.
func (lt *LiveTail) Apply(ev bus.Event) bool {
	if ev.Kind != bus.KindSurgeChange || ev.Area < 0 || int(ev.Area) >= len(lt.cur) {
		return false
	}
	a := int(ev.Area)
	lt.cur[a] = ev.Num
	lt.changes[a]++
	lt.series[a] = append(lt.series[a], ev)
	if ev.Time > lt.lastTime {
		lt.lastTime = ev.Time
	}
	return true
}

// Multipliers returns the current per-area multipliers (live slice; do
// not mutate).
func (lt *LiveTail) Multipliers() []float64 { return lt.cur }

// Changes returns how many multiplier moves each area has had.
func (lt *LiveTail) Changes() []int { return lt.changes }

// LastTime is the newest applied event's simulation time.
func (lt *LiveTail) LastTime() int64 { return lt.lastTime }

// Surging counts areas currently above 1×.
func (lt *LiveTail) Surging() int {
	n := 0
	for _, m := range lt.cur {
		if m > 1 {
			n++
		}
	}
	return n
}

// History returns area a's change events in arrival order.
func (lt *LiveTail) History(a int) []bus.Event {
	if a < 0 || a >= len(lt.series) {
		return nil
	}
	return lt.series[a]
}

// ASCII renders the live map one line per area: index, multiplier, a
// bar proportional to the multiplier, and the change count.
func (lt *LiveTail) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%d  %d/%d areas surging\n", lt.lastTime, lt.Surging(), len(lt.cur))
	for a, m := range lt.cur {
		bar := int((m - 1) * 8)
		if bar < 0 {
			bar = 0
		}
		if bar > 32 {
			bar = 32
		}
		fmt.Fprintf(&b, "  area %2d  %4.2fx %-32s %d changes\n",
			a, m, strings.Repeat("#", bar), lt.changes[a])
	}
	return b.String()
}
