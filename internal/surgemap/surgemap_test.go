package surgemap

import (
	"testing"

	"repro/internal/api"
	"repro/internal/geo"
	"repro/internal/sim"
)

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(1, 2)
	uf.union(4, 5)
	if uf.find(0) != uf.find(2) {
		t.Error("0 and 2 should be joined")
	}
	if uf.find(3) == uf.find(0) {
		t.Error("3 should be alone")
	}
	if uf.find(4) != uf.find(5) {
		t.Error("4 and 5 should be joined")
	}
	uf.union(0, 0) // self-union is a no-op
}

func TestSameSeries(t *testing.T) {
	if !sameSeries([]float64{1, 1.5}, []float64{1, 1.5}) {
		t.Error("identical series should match")
	}
	if sameSeries([]float64{1, 1.5}, []float64{1, 1.6}) {
		t.Error("differing series should not match")
	}
	if sameSeries([]float64{1}, []float64{1, 1}) {
		t.Error("length mismatch should not match")
	}
}

func TestInferRecoversTrueAreas(t *testing.T) {
	if testing.Short() {
		t.Skip("probing campaign is slow")
	}
	// SF surges most of the time, so a modest probe window separates the
	// areas.
	profile := sim.SanFrancisco()
	svc := api.NewBackend(profile, 17, false)
	prober, err := NewProber(svc, svc, svc.World().Projection(), profile.MeasureRect, 350)
	if err != nil {
		t.Fatal(err)
	}
	if prober.NumPoints() == 0 {
		t.Fatal("no lattice points")
	}

	// Sample mid-interval for 8 simulated hours (96 intervals).
	for i := 0; i < 96; i++ {
		next := svc.Now()/300*300 + 300 + 150
		svc.RunUntil(next)
		if err := prober.SampleOnce(); err != nil {
			t.Fatal(err)
		}
	}
	m := prober.Infer()
	if m.NumClusters < 2 {
		t.Fatalf("clusters = %d; surge areas were not separated", m.NumClusters)
	}
	areas := profile.SurgeAreas()
	acc := m.Accuracy(func(p geo.Point) int { return sim.AreaOf(areas, p) })
	if acc < 0.9 {
		t.Errorf("recovery accuracy = %.3f, want ≥ 0.9", acc)
	}
	// The paper found 4 areas per city; with enough surge activity the
	// partition resolves to exactly the true count.
	if m.NumClusters > 8 {
		t.Errorf("clusters = %d, want close to 4", m.NumClusters)
	}
}

func TestASCIIRendering(t *testing.T) {
	m := &Map{
		Cols: 3, Rows: 2,
		Cluster:     []int{0, 0, 1, 2, 2, 1}, // row 0 south, row 1 north
		NumClusters: 3,
		Points:      make([]geo.Point, 6),
	}
	got := m.ASCII()
	// North (row 1) first: "221", then south "001".
	want := "221\n001\n"
	if got != want {
		t.Errorf("ASCII = %q, want %q", got, want)
	}
	if (&Map{}).ASCII() != "" {
		t.Error("empty map should render empty")
	}
	// Labels beyond the alphabet render as '?'.
	big := &Map{Cols: 1, Rows: 1, Cluster: []int{99}, NumClusters: 100, Points: make([]geo.Point, 1)}
	if big.ASCII() != "?\n" {
		t.Errorf("overflow label = %q", big.ASCII())
	}
}

func TestAccuracyDegenerate(t *testing.T) {
	m := &Map{}
	if got := m.Accuracy(func(geo.Point) int { return 0 }); got != 0 {
		t.Errorf("empty map accuracy = %v", got)
	}
	m = &Map{
		Points:      []geo.Point{{X: 0}, {X: 1}},
		Cluster:     []int{0, 0},
		NumClusters: 1,
	}
	// Both points in one cluster, same truth: perfect.
	if got := m.Accuracy(func(geo.Point) int { return 7 }); got != 1 {
		t.Errorf("accuracy = %v, want 1", got)
	}
	// Truth splits the cluster: majority wins, accuracy 0.5.
	if got := m.Accuracy(func(p geo.Point) int { return int(p.X) }); got != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", got)
	}
}
