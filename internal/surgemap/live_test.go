package surgemap

import (
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/sim"
)

// TestLiveTailApply: unit semantics — fold, ignore foreign kinds and
// out-of-range areas, track history.
func TestLiveTailApply(t *testing.T) {
	lt := NewLiveTail(3)
	if !lt.Apply(bus.Event{Time: 300, Kind: bus.KindSurgeChange, Area: 1, Num: 1.5}) {
		t.Fatal("surge change not applied")
	}
	if lt.Apply(bus.Event{Time: 310, Kind: bus.KindPing, Area: 1, Num: 9}) {
		t.Error("non-surge event applied")
	}
	if lt.Apply(bus.Event{Time: 320, Kind: bus.KindSurgeChange, Area: 7, Num: 2}) {
		t.Error("out-of-range area applied")
	}
	lt.Apply(bus.Event{Time: 600, Kind: bus.KindSurgeChange, Area: 1, Num: 2.0})
	lt.Apply(bus.Event{Time: 600, Kind: bus.KindSurgeChange, Area: 0, Num: 1.2})

	if got := lt.Multipliers(); got[0] != 1.2 || got[1] != 2.0 || got[2] != 1 {
		t.Errorf("multipliers = %v, want [1.2 2 1]", got)
	}
	if got := lt.Changes(); got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Errorf("changes = %v, want [1 2 0]", got)
	}
	if lt.Surging() != 2 {
		t.Errorf("surging = %d, want 2", lt.Surging())
	}
	if lt.LastTime() != 600 {
		t.Errorf("last time = %d, want 600", lt.LastTime())
	}
	if h := lt.History(1); len(h) != 2 || h[1].Num != 2.0 {
		t.Errorf("history(1) = %v", h)
	}
	if out := lt.ASCII(); !strings.Contains(out, "2/3 areas surging") {
		t.Errorf("ASCII missing surge summary:\n%s", out)
	}
}

// TestLiveTailFollowsEngine: end-to-end — the surge engine publishes to
// a real broker, a cross-process Tailer reads the topic, and the live
// map must agree exactly with the engine's own multipliers.
func TestLiveTailFollowsEngine(t *testing.T) {
	profile := sim.Manhattan()
	svc := api.NewBackend(profile, 9, false)

	dir := t.TempDir()
	br, err := bus.Open(dir, bus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	topic, err := br.Topic(bus.TopicSurge, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc.Engine().SetEventSink(func(ev bus.Event) {
		if err := topic.Publish(ev); err != nil {
			t.Errorf("publish: %v", err)
		}
	})

	svc.RunUntil(4 * 3600) // enough 5-minute boundaries for real movement
	if err := br.Sync(); err != nil {
		t.Fatal(err)
	}

	tail, err := bus.OpenTail(dir, bus.TopicSurge)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	numAreas := len(profile.SurgeAreas())
	lt := NewLiveTail(numAreas)
	applied := 0
	for _, ev := range tail.Poll(nil) {
		if lt.Apply(ev) {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("no surge changes published over four simulated hours")
	}
	for a := 0; a < numAreas; a++ {
		if got, want := lt.Multipliers()[a], svc.Engine().CurrentMultiplier(a); got != want {
			t.Errorf("area %d: live map %.2f, engine %.2f", a, got, want)
		}
	}
}
