// Package surgemap reconstructs Uber's surge-area partition from the
// outside, the way §5.3 does: probe a lattice of locations through the
// price API (which has no jitter and updates on the 5-minute clock),
// record each location's multiplier series, and merge adjacent lattice
// points whose series stay in lock-step. The connected clusters are the
// surge areas (Figs 18, 19).
package surgemap

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/geo"
)

// Map is an inferred surge-area partition.
type Map struct {
	// Points is the probe lattice (plane coordinates).
	Points []geo.Point
	// Series is each point's multiplier per sampled interval.
	Series [][]float64
	// Cluster assigns each point an inferred area label (dense, 0-based).
	Cluster []int
	// NumClusters is the number of distinct labels.
	NumClusters int
	// Cols/Rows describe the lattice for adjacency.
	Cols, Rows int
}

// Prober drives the inference. One account is shared by up to 80 lattice
// points: 80 points × 12 samples/hour = 960 requests/hour, inside the
// 1,000/hour limit.
type Prober struct {
	Svc     core.Service
	Proj    *geo.Projection
	Spacing float64
	Rect    geo.Rect

	points   []geo.Point
	accounts []string
	series   [][]float64
	cols     int
	rows     int
}

const pointsPerAccount = 80

// Registrar matches api.Service's and api.Remote's account surface.
// Registration against a remote backend can fail, so Register returns an
// error.
type Registrar interface {
	Register(clientID string) error
}

// NewProber lays a lattice with the given spacing over rect and registers
// the accounts it needs. It fails only when an account registration fails
// (possible against a remote backend; never in-process).
func NewProber(svc core.Service, reg Registrar, proj *geo.Projection, rect geo.Rect, spacing float64) (*Prober, error) {
	p := &Prober{Svc: svc, Proj: proj, Spacing: spacing, Rect: rect}
	p.cols = int(rect.Width()/spacing) + 1
	p.rows = int(rect.Height()/spacing) + 1
	for r := 0; r < p.rows; r++ {
		for c := 0; c < p.cols; c++ {
			p.points = append(p.points, geo.Point{
				X: rect.Min.X + float64(c)*spacing,
				Y: rect.Min.Y + float64(r)*spacing,
			})
		}
	}
	p.series = make([][]float64, len(p.points))
	nAcc := (len(p.points)-1)/pointsPerAccount + 1
	for i := 0; i < nAcc; i++ {
		id := fmt.Sprintf("mapper-%02d", i)
		p.accounts = append(p.accounts, id)
		if err := reg.Register(id); err != nil {
			return nil, fmt.Errorf("surgemap: register %s: %w", id, err)
		}
	}
	return p, nil
}

// NumPoints returns the lattice size.
func (p *Prober) NumPoints() int { return len(p.points) }

// SampleOnce queries every lattice point's current multiplier and appends
// it to the series. Call once per 5-minute interval, mid-interval (after
// the API switch moment). A failed query (rate limiting, transport)
// repeats the point's previous value so the lattice stays rectangular —
// a ragged lattice would silently fragment the clustering; the first
// error is still reported.
func (p *Prober) SampleOnce() error {
	var firstErr error
	for i, pt := range p.points {
		acct := p.accounts[i/pointsPerAccount]
		prices, err := p.Svc.EstimatePrice(acct, p.Proj.ToLatLng(pt))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("surgemap: point %d: %w", i, err)
			}
			last := 1.0
			if n := len(p.series[i]); n > 0 {
				last = p.series[i][n-1]
			}
			p.series[i] = append(p.series[i], last)
			continue
		}
		m := 1.0
		for _, pe := range prices {
			if pe.TypeName == core.UberX.String() {
				m = pe.Surge
				break
			}
		}
		p.series[i] = append(p.series[i], m)
	}
	return firstErr
}

// Infer clusters the lattice: adjacent points (4-neighborhood) whose
// series are identical in every sampled interval share an area.
func (p *Prober) Infer() *Map {
	n := len(p.points)
	uf := newUnionFind(n)
	for r := 0; r < p.rows; r++ {
		for c := 0; c < p.cols; c++ {
			i := r*p.cols + c
			if c+1 < p.cols && sameSeries(p.series[i], p.series[i+1]) {
				uf.union(i, i+1)
			}
			if r+1 < p.rows && sameSeries(p.series[i], p.series[i+p.cols]) {
				uf.union(i, i+p.cols)
			}
		}
	}
	labels := make([]int, n)
	next := 0
	seen := map[int]int{}
	for i := 0; i < n; i++ {
		root := uf.find(i)
		lbl, ok := seen[root]
		if !ok {
			lbl = next
			next++
			seen[root] = lbl
		}
		labels[i] = lbl
	}
	return &Map{
		Points:      p.points,
		Series:      p.series,
		Cluster:     labels,
		NumClusters: next,
		Cols:        p.cols,
		Rows:        p.rows,
	}
}

func sameSeries(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ASCII renders the inferred partition as a lattice of cluster labels
// (digits, then letters), north at the top — the textual equivalent of
// Figs 18 and 19.
func (m *Map) ASCII() string {
	if m.Cols == 0 || m.Rows == 0 {
		return ""
	}
	label := func(c int) byte {
		const alphabet = "0123456789abcdefghijklmnopqrstuvwxyz"
		if c < len(alphabet) {
			return alphabet[c]
		}
		return '?'
	}
	var sb strings.Builder
	for r := m.Rows - 1; r >= 0; r-- {
		for c := 0; c < m.Cols; c++ {
			sb.WriteByte(label(m.Cluster[r*m.Cols+c]))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Accuracy scores the inferred partition against ground truth: the
// fraction of lattice points whose cluster's majority true-area label
// matches their own true area.
func (m *Map) Accuracy(truth func(geo.Point) int) float64 {
	if len(m.Points) == 0 {
		return 0
	}
	// Majority true label per cluster.
	votes := make([]map[int]int, m.NumClusters)
	for i := range votes {
		votes[i] = make(map[int]int)
	}
	trueOf := make([]int, len(m.Points))
	for i, pt := range m.Points {
		trueOf[i] = truth(pt)
		votes[m.Cluster[i]][trueOf[i]]++
	}
	majority := make([]int, m.NumClusters)
	for c, v := range votes {
		best, bestN := -1, -1
		for lbl, n := range v {
			if n > bestN {
				best, bestN = lbl, n
			}
		}
		majority[c] = best
	}
	ok := 0
	for i := range m.Points {
		if majority[m.Cluster[i]] == trueOf[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(m.Points))
}

// unionFind is a standard disjoint-set with path compression.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
