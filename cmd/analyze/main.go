// Command analyze replays a recorded measurement campaign (produced by
// `measure -record`) through the analysis pipeline offline, the way the
// paper's 996 GB corpus was analyzed after collection: supply/demand
// series, EWT and surge distributions, surge durations, jitter events,
// and the Table 1 forecasting fits.
//
// It reads both store kinds: a gzip recording (`measure -record x.jsonl.gz`)
// or a tsdb directory (`measure -record x.tsdb -store tsdb`). With -from/-to
// a tsdb store is range-queried, decoding only the chunks overlapping the
// window instead of the whole campaign. A recording with a truncated tail
// (crashed campaign, partial copy) is analyzed up to the damage, with a
// warning.
//
// With -follow it switches from batch to streaming: it tails a live bus
// directory (uberd -bus DIR), reports each 5-minute window as it seals,
// and prints surge/supply/EWT/demand correlations over the run.
//
// Usage:
//
//	analyze -in campaign.jsonl.gz
//	analyze -in campaign.tsdb -from 1672531200 -to 1672617600
//	analyze -follow -bus /tmp/ubus -windows 12
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chart"
	"repro/internal/forecast"
	"repro/internal/measure"
	"repro/internal/record"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	in := flag.String("in", "", "recording file or tsdb directory (required unless -follow)")
	from := flag.Int64("from", 0, "analyze observations at or after this campaign time (0 = start)")
	to := flag.Int64("to", 0, "analyze observations before this campaign time (0 = end)")
	follow := flag.Bool("follow", false, "stream live windows from a bus directory instead of replaying a store")
	busDir := flag.String("bus", "", "bus directory to tail (with -follow; an uberd -bus DIR)")
	windows := flag.Int("windows", 0, "with -follow: stop after this many sealed windows (0 = until interrupted)")
	poll := flag.Duration("poll", 200*time.Millisecond, "with -follow: idle poll interval")
	flag.Parse()
	if *follow {
		if *busDir == "" {
			fmt.Fprintln(os.Stderr, "usage: analyze -follow -bus DIR [-windows N]")
			os.Exit(2)
		}
		os.Exit(runFollow(*busDir, *windows, *poll))
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "usage: analyze -in campaign.jsonl.gz [-from T] [-to T]")
		os.Exit(2)
	}

	// One pass over the header only; the data stream stays untouched until
	// the replay below.
	hdr, err := record.ReadHeaderPath(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	profile, err := profileByName(hdr.City)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	areas := profile.SurgeAreas()
	clientAreas := make([]int, len(hdr.Clients))
	for i, p := range hdr.Clients {
		clientAreas[i] = sim.AreaOf(areas, p)
	}

	lo, hi := int64(record.MinTime), int64(record.MaxTime)
	if *from != 0 {
		lo = *from
	}
	if *to != 0 {
		hi = *to
	}
	// A tsdb store knows its extent up front, so the series can be sized
	// exactly; a gzip recording is bounded generously and trimmed later.
	start, end := hdr.Start, hdr.Start+14*24*3600
	if minT, maxT, ok, err := record.StoreBounds(*in); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	} else if ok {
		start, end = minT, maxT+measure.Interval
	}
	if lo > start {
		start = lo
	}
	if hi < end {
		end = hi
	}
	ds := measure.NewDataset(measure.Config{
		Profile:     profile,
		Start:       start,
		End:         end,
		ClientAreas: clientAreas,
	}, len(hdr.Clients))

	hdr2, rounds, err := record.ReplayPathRange(*in, lo, hi, ds)
	if errors.Is(err, record.ErrTruncated) {
		fmt.Fprintf(os.Stderr, "warning: %v; analyzing the %d rounds before the damage\n", err, rounds)
		err = nil
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ds.Close()

	fmt.Printf("recording: city=%s clients=%d rounds=%d\n", hdr2.City, len(hdr2.Clients), rounds)
	printSeries(ds)
	printDistributions(ds)
	printSurgeAnalysis(ds, start, start+rounds*5)
	printForecast(ds, start, start+rounds*5)
}

func profileByName(name string) (*sim.CityProfile, error) {
	switch name {
	case "manhattan":
		return sim.Manhattan(), nil
	case "sf":
		return sim.SanFrancisco(), nil
	default:
		return nil, fmt.Errorf("unknown city %q in recording", name)
	}
}

func printSeries(ds *measure.Dataset) {
	fmt.Println("\nsupply / demand (per 5-minute interval):")
	for _, vt := range measure.TrackedTypes {
		s := mean(ds.SupplySeries(vt).Values)
		d := mean(ds.DeathSeries(vt).Values)
		fmt.Printf("  %-10s supply %.1f, deaths %.2f\n", vt, s, d)
	}
	if supply := trimNaN(ds.SupplySeries(measure.TrackedTypes[0]).Values); len(supply) > 2 {
		fmt.Println("\nUberX supply over the recording:")
		fmt.Print(chart.Line(supply, 72, 9))
	}
	if surge := trimNaN(ds.SurgeSeries().Values); len(surge) > 2 {
		fmt.Println("\nmean surge over the recording:")
		fmt.Print(chart.Line(surge, 72, 9))
	}
}

// trimNaN removes the trailing never-written buckets of a generously
// sized series.
func trimNaN(xs []float64) []float64 {
	end := len(xs)
	for end > 0 && xs[end-1] != xs[end-1] {
		end--
	}
	return xs[:end]
}

func printDistributions(ds *measure.Dataset) {
	if len(ds.EWTSamples) > 0 {
		c := stats.NewCDF(toF64(ds.EWTSamples))
		fmt.Printf("\nEWT minutes: median %.2f  p90 %.2f  P(≤4min) %.1f%%\n",
			c.Median(), c.Quantile(0.9), c.At(4)*100)
	}
	if len(ds.SurgeSamples) > 0 {
		c := stats.NewCDF(toF64(ds.SurgeSamples))
		fmt.Printf("surge: P(=1) %.1f%%  median %.2f  max %.1f\n",
			c.At(1)*100, c.Median(), c.Quantile(1))
	}
}

func printSurgeAnalysis(ds *measure.Dataset, start, end int64) {
	var durations []float64
	for _, log := range ds.Changes {
		durations = append(durations, measure.SurgeDurations(log, 1, start, end)...)
	}
	if len(durations) > 0 {
		c := stats.NewCDF(durations)
		fmt.Printf("\nsurge durations: n=%d  P(<1min) %.1f%%  P(≤5min) %.1f%%  P(≤10min) %.1f%%\n",
			len(durations), c.At(59)*100, c.At(300)*100, c.At(600)*100)
	}
	events := measure.ExtractJitter(ds.Changes)
	fmt.Printf("jitter events: %d\n", len(events))
	if len(events) > 0 {
		counts := measure.SimultaneousJitter(events)
		alone := 0
		for _, c := range counts {
			if c == 1 {
				alone++
			}
		}
		fmt.Printf("  observed by a single client: %.1f%%\n",
			float64(alone)/float64(len(events))*100)
	}
}

func printForecast(ds *measure.Dataset, from, to int64) {
	table, samples, err := forecast.FitCityRange(ds, from, to)
	if err != nil {
		fmt.Printf("\nforecast: %v\n", err)
		return
	}
	fmt.Printf("\nforecasting (n=%d samples):\n", len(samples))
	for _, m := range []forecast.Model{table.Raw, table.Threshold, table.Rush} {
		if m.N == 0 {
			fmt.Printf("  %-10s (no data)\n", m.Name)
			continue
		}
		fmt.Printf("  %-10s R²=%.3f  θ_sd-diff=%.4f θ_ewt=%.4f θ_prev=%.3f\n",
			m.Name, m.R2, m.ThetaSDDiff, m.ThetaEWT, m.ThetaPrevSurge)
	}
}

func mean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x == x {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func toF64(xs []float32) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
