// Streaming mode: instead of replaying a finished store, -follow tails a
// live bus directory (uberd -bus DIR) and reports each sealed 5-minute
// window as it completes, with the Fig 20/21-style correlations over the
// windows seen so far printed at the end. It reads the pings topic for
// supply/EWT/surge and the cars topic for dispatched demand; events are
// merged in poll order, so cross-topic skew within one poll interval is
// tolerated by the analyzer's late-event handling.

package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/bus"
	"repro/internal/measure"
)

func runFollow(busDir string, maxWindows int, poll time.Duration) int {
	var tails []*bus.Tailer
	for _, topic := range []string{bus.TopicPings, bus.TopicCars} {
		tl, err := bus.OpenTail(busDir, topic)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: %v (topic skipped)\n", err)
			continue
		}
		defer tl.Close()
		tails = append(tails, tl)
	}
	if len(tails) == 0 {
		fmt.Fprintln(os.Stderr, "no tailable topics; is this a -bus directory?")
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	a := measure.NewStreamAnalyzer(measure.StreamConfig{})
	sealed := 0
	var batch []bus.Event
	for ctx.Err() == nil && (maxWindows == 0 || sealed < maxWindows) {
		// One poll gathers every topic before feeding, merged by event
		// time — otherwise catching up on a long backlog would drain one
		// topic whole, sealing windows the other topics still have
		// events for.
		batch = batch[:0]
		for _, tl := range tails {
			batch = tl.Poll(batch)
		}
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].Time < batch[j].Time })
		for _, ev := range batch {
			if w := a.Feed(ev); w != nil {
				fmt.Println(w)
				sealed++
			}
		}
		if len(batch) == 0 {
			select {
			case <-ctx.Done():
			case <-time.After(poll):
			}
		}
	}
	if w := a.Flush(); w != nil {
		fmt.Printf("%s (partial)\n", w)
	}

	surgeSupply, surgeEWT, surgeDemand, n := a.Correlations()
	fmt.Printf("\n%d windows", n)
	if a.Late > 0 {
		fmt.Printf(" (%d late events folded forward)", a.Late)
	}
	fmt.Println()
	printCorr := func(name string, r float64) {
		if math.IsNaN(r) {
			fmt.Printf("  corr(surge, %s): (degenerate)\n", name)
			return
		}
		fmt.Printf("  corr(surge, %s): %+.3f\n", name, r)
	}
	printCorr("supply", surgeSupply)
	printCorr("EWT", surgeEWT)
	printCorr("dispatches", surgeDemand)
	return 0
}
