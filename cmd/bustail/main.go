// Command bustail follows a topic of an embedded bus directory (an
// `uberd -bus DIR`) from another process and prints events as they
// arrive — the streaming pipeline's tcpdump. With -surgemap it folds
// surge.changes into the live per-area multiplier map instead of
// printing raw events, redrawing on every change.
//
// Usage:
//
//	bustail -bus /tmp/ubus -topic sim.cars
//	bustail -bus /tmp/ubus -topic api.pings -json -n 100
//	bustail -bus /tmp/ubus -surgemap -areas 6
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bus"
	"repro/internal/surgemap"
)

func main() {
	busDir := flag.String("bus", "", "bus directory (required)")
	topic := flag.String("topic", bus.TopicCars, "topic to follow")
	asJSON := flag.Bool("json", false, "print events as JSON lines")
	maxN := flag.Int("n", 0, "stop after this many events (0 = until interrupted)")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle poll interval")
	surgeMap := flag.Bool("surgemap", false, "render the live surge map from surge.changes instead of raw events")
	areas := flag.Int("areas", 6, "number of surge areas (with -surgemap)")
	flag.Parse()
	if *busDir == "" {
		fmt.Fprintln(os.Stderr, "usage: bustail -bus DIR [-topic NAME] [-json] [-n N] | -surgemap [-areas N]")
		os.Exit(2)
	}
	if *surgeMap {
		*topic = bus.TopicSurge
	}

	tail, err := bus.OpenTail(*busDir, *topic)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer tail.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var lt *surgemap.LiveTail
	if *surgeMap {
		lt = surgemap.NewLiveTail(*areas)
	}
	enc := json.NewEncoder(os.Stdout)
	seen := 0
	var buf []bus.Event
	for ctx.Err() == nil && (*maxN == 0 || seen < *maxN) {
		buf = tail.Poll(buf[:0])
		if len(buf) == 0 {
			select {
			case <-ctx.Done():
			case <-time.After(*poll):
			}
			continue
		}
		redraw := false
		for _, ev := range buf {
			seen++
			switch {
			case lt != nil:
				redraw = lt.Apply(ev) || redraw
			case *asJSON:
				enc.Encode(map[string]any{
					"part": ev.Part, "seq": ev.Seq, "time": ev.Time,
					"kind": ev.Kind.String(), "key": ev.Key, "area": ev.Area,
					"num": ev.Num, "str": ev.Str, "data_len": len(ev.Data),
				})
			default:
				fmt.Printf("%d/%-6d t=%-8d %-14s key=%s area=%d num=%g str=%q data=%dB\n",
					ev.Part, ev.Seq, ev.Time, ev.Kind, ev.Key, ev.Area, ev.Num, ev.Str, len(ev.Data))
			}
			if *maxN > 0 && seen >= *maxN {
				break
			}
		}
		if redraw {
			fmt.Print(lt.ASCII())
		}
	}
}
