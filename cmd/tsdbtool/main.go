// Command tsdbtool inspects and maintains tsdb campaign stores (the
// directories written by `measure -record DIR -store tsdb`).
//
// Usage:
//
//	tsdbtool inspect DIR            summarize segments, series, time range
//	tsdbtool verify DIR             walk every CRC; nonzero exit on damage
//	tsdbtool compact DIR            merge all sealed segments into one
//	tsdbtool convert -in A -out B   convert tsdb dir ↔ gzip recording
//
// verify re-reads every byte: whole-file CRCs (a single flipped byte
// anywhere fails), per-chunk CRCs, decode of every chunk, and a WAL scan
// reporting how many rows a reopen would recover after a crash.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/record"
	"repro/internal/tsdb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "inspect":
		err = inspect(dirArg(os.Args[2:]))
	case "verify":
		err = verify(dirArg(os.Args[2:]))
	case "compact":
		err = compact(dirArg(os.Args[2:]))
	case "convert":
		err = convert(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsdbtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tsdbtool inspect DIR
  tsdbtool verify DIR
  tsdbtool compact DIR
  tsdbtool convert -in PATH -out PATH`)
	os.Exit(2)
}

func dirArg(args []string) string {
	if len(args) != 1 {
		usage()
	}
	return args[0]
}

func inspect(dir string) error {
	db, err := tsdb.Open(dir, tsdb.Options{ReadOnly: true})
	if err != nil {
		return err
	}
	defer db.Close()
	st := db.Stats()
	fmt.Printf("store: %s\n", dir)
	if hdr, err := record.ReadHeaderPath(dir); err == nil {
		fmt.Printf("campaign: city=%s clients=%d start=%d\n", hdr.City, len(hdr.Clients), hdr.Start)
	}
	fmt.Printf("segments: %d (%d bytes, %d rows)\n", st.Segments, st.SegmentBytes, st.SegmentRows)
	fmt.Printf("wal: %d rows pending seal (%d recovered at open)\n", st.HeadRows, st.Recovered)
	if st.HasData {
		fmt.Printf("time range: [%d, %d] (%.1f campaign hours)\n",
			st.MinTime, st.MaxTime, float64(st.MaxTime-st.MinTime)/3600)
	}
	fmt.Printf("series: %d\n", len(db.Series()))
	if rows := st.SegmentRows + int64(st.HeadRows); rows > 0 && st.SegmentBytes > 0 {
		fmt.Printf("bytes/row (sealed): %.1f\n", float64(st.SegmentBytes)/float64(st.SegmentRows))
	}
	return nil
}

func verify(dir string) error {
	rep, err := tsdb.Verify(dir)
	if err != nil {
		return err
	}
	for _, s := range rep.Segments {
		fmt.Printf("segment %s: %d rows, %d chunks, %d bytes, [%d, %d] ok\n",
			s.Path, s.Rows, s.Chunks, s.Bytes, s.MinT, s.MaxT)
	}
	fmt.Printf("sealed rows: %d\n", rep.Rows)
	switch {
	case rep.WALStale:
		fmt.Println("wal: stale (head already sealed; will be discarded)")
	case rep.WALTorn:
		fmt.Printf("wal: recovered %d rows (torn tail dropped)\n", rep.WALRows)
	default:
		fmt.Printf("wal: recovered %d rows\n", rep.WALRows)
	}
	fmt.Println("ok")
	return nil
}

func compact(dir string) error {
	db, err := tsdb.Open(dir, tsdb.Options{})
	if err != nil {
		return err
	}
	before := db.Stats()
	if err := db.Compact(); err != nil {
		db.Close()
		return err
	}
	after := db.Stats()
	if err := db.Close(); err != nil {
		return err
	}
	fmt.Printf("compacted %d segments (%d bytes) into %d (%d bytes)\n",
		before.Segments, before.SegmentBytes, after.Segments, after.SegmentBytes)
	return nil
}

func convert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "source store (tsdb directory or gzip recording)")
	out := fs.String("out", "", "destination store (kind inferred: the opposite of -in)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -in and -out are required")
	}
	hdr, rows, err := record.Convert(*in, *out, nil)
	if err != nil {
		return err
	}
	fmt.Printf("converted %d rows (city=%s, %d clients) to %s\n", rows, hdr.City, len(hdr.Clients), *out)
	return nil
}
