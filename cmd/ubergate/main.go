// Command ubergate is the multi-city shard gateway: it fronts N uberd
// shards (each owning one city world) and routes requests by GPS to the
// shard responsible for that region, health-checking every shard and
// degrading gracefully when one dies — same-region traffic reroutes to a
// surviving replica, a region with no survivors is shed with
// 503 + Retry-After (never answered from the wrong city), and the fan-in
// /metrics keeps serving with the missing shard labeled.
//
// Shards are declared as region=baseURL pairs; regions are the city
// profiles (manhattan, sf). Several shards may share a region (replicas
// of the same city world); GPS cells split across them by rendezvous
// hashing, deterministically across gateway restarts.
//
// Chaos applies to the gateway itself too: the same -chaos-* fault
// injection, -max-inflight admission control, and -request-timeout
// middleware chain as uberd, wrapped around the forwarding surface only —
// /metrics, /healthz, and /readyz stay outside so the gateway remains
// observable while being tortured. Deadlines propagate: the remaining
// request budget travels to the shard as X-Request-Deadline-Ms and the
// shard clamps its own handler timeout to it.
//
// Usage:
//
//	uberd -city sf -addr 127.0.0.1:18081 &
//	uberd -city manhattan -addr 127.0.0.1:18082 &
//	uberd -city manhattan -addr 127.0.0.1:18083 &
//	ubergate -addr :8090 \
//	  -shards sf=http://127.0.0.1:18081,manhattan=http://127.0.0.1:18082,manhattan=http://127.0.0.1:18083
//	loadgen -gateway -addr http://localhost:8090 -clients 12 -duration 10s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/gate"
	"repro/internal/obs"
	"repro/internal/sim"
)

// cityRegion resolves a city name to its routing region spec.
func cityRegion(name string) (gate.RegionSpec, error) {
	var p *sim.CityProfile
	switch name {
	case "manhattan", "mhtn", "nyc":
		p = sim.Manhattan()
	case "sf", "sanfrancisco":
		p = sim.SanFrancisco()
	default:
		return gate.RegionSpec{}, fmt.Errorf("unknown city %q (want manhattan or sf)", name)
	}
	return gate.RegionSpec{Name: p.Name, Origin: p.Origin, Rect: p.Region}, nil
}

// parseShards parses "region=url,region=url,..." into specs, naming
// shards region-0, region-1, ... in declaration order.
func parseShards(arg string) ([]gate.RegionSpec, []gate.ShardSpec, error) {
	var regions []gate.RegionSpec
	seen := make(map[string]int) // region name -> replica count
	var shards []gate.ShardSpec
	for _, entry := range strings.Split(arg, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		city, url, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, nil, fmt.Errorf("bad shard %q (want city=baseURL)", entry)
		}
		spec, err := cityRegion(city)
		if err != nil {
			return nil, nil, err
		}
		if _, ok := seen[spec.Name]; !ok {
			regions = append(regions, spec)
		}
		shards = append(shards, gate.ShardSpec{
			Name:    fmt.Sprintf("%s-%d", spec.Name, seen[spec.Name]),
			Region:  spec.Name,
			BaseURL: strings.TrimRight(url, "/"),
		})
		seen[spec.Name]++
	}
	if len(shards) == 0 {
		return nil, nil, errors.New("no shards configured (-shards)")
	}
	return regions, shards, nil
}

// applyFailovers parses "region=region,..." onto the region specs.
func applyFailovers(regions []gate.RegionSpec, arg string) error {
	for _, entry := range strings.Split(arg, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		from, to, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("bad failover %q (want region=region)", entry)
		}
		found := false
		for i := range regions {
			if regions[i].Name == from {
				regions[i].Failover = to
				found = true
			}
		}
		if !found {
			return fmt.Errorf("failover source region %q has no shards", from)
		}
	}
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		shardsArg  = flag.String("shards", "", "comma-separated city=baseURL shard list (required; repeat a city for replicas)")
		failovers  = flag.String("failover", "", "comma-separated region=region static failover map (optional)")
		healthIvl  = flag.Duration("health-interval", 500*time.Millisecond, "active health-check period per shard")
		healthTmo  = flag.Duration("health-timeout", 0, "per-probe timeout (default: the interval)")
		failThresh = flag.Int("fail-threshold", 2, "consecutive failed probes before a shard is marked down")
		fwdTimeout = flag.Duration("forward-timeout", 5*time.Second, "per-forwarded-request budget (clamped by the caller's propagated deadline)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After advertised on shed responses")

		chaosSeed     = flag.Int64("chaos-seed", 1, "fault-injection seed")
		chaosError    = flag.Float64("chaos-error", 0, "probability of answering a request with an injected 500")
		chaosReset    = flag.Float64("chaos-reset", 0, "probability of aborting a request's connection")
		chaosTruncate = flag.Float64("chaos-truncate", 0, "probability of truncating a response body")
		chaosLatProb  = flag.Float64("chaos-latency-prob", 0, "probability of delaying a request")
		chaosLatency  = flag.Duration("chaos-latency", 0, "maximum injected delay")
		maxInflight   = flag.Int("max-inflight", 0, "shed load with 503 above this many in-flight requests (0 = unlimited)")
		reqTimeout    = flag.Duration("request-timeout", 10*time.Second, "per-request handler timeout at the gateway (0 = header-only)")
		drain         = flag.Duration("drain", 500*time.Millisecond, "readiness-drain delay before shutdown closes the listener")
	)
	flag.Parse()

	if *shardsArg == "" {
		fmt.Fprintln(os.Stderr, "-shards is required, e.g. -shards sf=http://127.0.0.1:18081,manhattan=http://127.0.0.1:18082")
		os.Exit(2)
	}
	regions, shards, err := parseShards(*shardsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := applyFailovers(regions, *failovers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	g, err := gate.NewGateway(gate.Config{
		Regions:        regions,
		Shards:         shards,
		HealthInterval: *healthIvl,
		HealthTimeout:  *healthTmo,
		FailThreshold:  *failThresh,
		ForwardTimeout: *fwdTimeout,
		RetryAfter:     *retryAfter,
		Registry:       reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	g.Start()
	defer g.Close()

	chaosCfg := chaos.Config{
		Seed:         *chaosSeed,
		ErrorProb:    *chaosError,
		ResetProb:    *chaosReset,
		TruncateProb: *chaosTruncate,
		LatencyProb:  *chaosLatProb,
		Latency:      *chaosLatency,
	}
	var injector *chaos.Injector
	if chaosCfg.Enabled() {
		injector = chaos.NewInjector(chaosCfg)
		log.Printf("ubergate: chaos enabled (seed %d, error %.3f, reset %.3f, truncate %.3f, latency %.3f up to %s)",
			*chaosSeed, *chaosError, *chaosReset, *chaosTruncate, *chaosLatProb, *chaosLatency)
	}

	// Same middleware order as uberd (outermost first): shed before any
	// work, inject faults on admitted requests, recover panics, bound the
	// forward by the per-request budget. Health and metrics stay outside.
	var h http.Handler = g.APIHandler()
	h = chaos.Timeout(h, *reqTimeout, reg)
	h = chaos.Recover(h, reg)
	if injector != nil {
		h = injector.Middleware(h, reg)
	}
	h = chaos.Shed(h, *maxInflight, *retryAfter, reg)
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.Handle("GET /metrics", g.MetricsHandler())
	mux.Handle("GET /healthz", api.Healthz(nil))
	mux.Handle("GET /readyz", g.Readiness().Handler())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	for _, s := range g.Shards() {
		log.Printf("ubergate: shard %s (%s) -> %s alive=%v ready=%v",
			s.Name, s.Region, s.BaseURL, s.Alive(), s.Ready())
	}
	log.Printf("ubergate: serving %d shards on %s (health every %s, fail threshold %d)",
		len(g.Shards()), *addr, *healthIvl, *failThresh)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		// Fail readiness first so an upstream balancer (or a prober of
		// our own /readyz) stops sending work, then close the listener.
		log.Printf("ubergate: shutting down")
		g.Readiness().SetDraining(true)
		time.Sleep(*drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("ubergate: shutdown: %v", err)
		}
	}
}
