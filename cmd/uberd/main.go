// Command uberd runs the simulated Uber backend over HTTP: the pingClient
// stream and the estimates/price + estimates/time API, complete with surge
// areas, the 5-minute surge clock, per-account rate limits, and
// (optionally) the April 2015 jitter bug.
//
// The simulation clock advances in 5-second ticks at -speedup× real time,
// so a measurement campaign (cmd/measure) can be pointed at it like the
// paper's scripts were pointed at Uber.
//
// Observability: GET /metrics serves the obs registry in Prometheus text
// format (per-endpoint request counters and latency histograms, surge and
// sim internals), and /debug/pprof/* the Go runtime profiles. Point
// cmd/loadgen at the same address to generate traffic and read back
// percentiles.
//
// Resilience: the API handler sits behind a middleware chain (outermost
// first) of admission control (-max-inflight, shed with 503 + Retry-After),
// seeded fault injection (-chaos-*), panic recovery, and a per-request
// timeout (-request-timeout). /metrics and /debug/pprof stay outside the
// chain so the server remains observable while it is being tortured.
//
// Streaming: with -bus DIR every backend layer publishes typed events to
// an embedded broker (driver lifecycle and trips, surge multiplier moves,
// served pings, injected faults); -bus-ingest DIR additionally runs the
// live tsdb ingester in-process, growing a campaign store `analyze` can
// read — no polling campaign required. Consumers in other processes tail
// the same directory (cmd/bustail, analyze -follow). On SIGINT/SIGTERM
// the server stops ticking and serving, then drains the ingest backlog
// and flushes rows before consumer offsets.
//
// Usage:
//
//	uberd -city sf -addr :8080 -speedup 60 -jitter
//	uberd -city manhattan -road            # street-network movement + congestion
//	uberd -city sf -chaos-error 0.1 -chaos-latency 50ms -chaos-latency-prob 0.2 -max-inflight 64
//	uberd -city manhattan -bus /tmp/ubus -bus-ingest /tmp/live.tsdb
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/surge"
)

func main() {
	var (
		city    = flag.String("city", "manhattan", "city profile: manhattan or sf")
		addr    = flag.String("addr", ":8080", "listen address")
		seed    = flag.Int64("seed", 42, "simulation seed")
		jitter  = flag.Bool("jitter", false, "enable the April 2015 client-stream jitter bug")
		speedup = flag.Float64("speedup", 60, "simulation seconds per wall-clock second")
		warmup  = flag.Int64("warmup", 600, "simulation seconds to run before serving")
		workers = flag.Int("sim-workers", 0, "parallel tick workers for the simulation (0 = GOMAXPROCS; results are identical for any value)")
		scale   = flag.Float64("fleet-scale", 1, "multiply the city's driver and request targets (load testing; 1 = calibrated size)")
		roads   = flag.Bool("road", false, "drive on the synthetic street network (A* routing, congestion feedback) instead of straight lines")
		engine  = flag.String("engine", "mult2015", "pricing engine: "+strings.Join(surge.EngineNames(), ", "))

		chaosSeed     = flag.Int64("chaos-seed", 1, "fault-injection seed (same seed replays the same fault sequence)")
		chaosError    = flag.Float64("chaos-error", 0, "probability of answering a request with an injected 500")
		chaosReset    = flag.Float64("chaos-reset", 0, "probability of aborting a request's connection")
		chaosTruncate = flag.Float64("chaos-truncate", 0, "probability of truncating a response body")
		chaosLatProb  = flag.Float64("chaos-latency-prob", 0, "probability of delaying a request")
		chaosLatency  = flag.Duration("chaos-latency", 0, "maximum injected delay (actual delay uniform up to this)")
		maxInflight   = flag.Int("max-inflight", 0, "shed load with 503 above this many in-flight requests (0 = unlimited)")
		retryAfter    = flag.Duration("retry-after", time.Second, "Retry-After advertised on shed responses")
		reqTimeout    = flag.Duration("request-timeout", 5*time.Second, "per-request handler timeout (0 = header-only)")
		drain         = flag.Duration("drain", 500*time.Millisecond, "readiness-drain delay before shutdown closes the listener")

		busDir    = flag.String("bus", "", "publish backend events to an embedded bus broker at this directory")
		busIngest = flag.String("bus-ingest", "", "live-ingest served pings into a tsdb campaign store at this directory (requires -bus)")
		busDrop   = flag.Bool("bus-drop", false, "drop events instead of blocking publishers when a bus consumer falls behind")
	)
	flag.Parse()

	var profile *sim.CityProfile
	switch *city {
	case "manhattan", "mhtn", "nyc":
		profile = sim.Manhattan()
	case "sf", "sanfrancisco":
		profile = sim.SanFrancisco()
	default:
		fmt.Fprintf(os.Stderr, "unknown city %q (want manhattan or sf)\n", *city)
		os.Exit(2)
	}
	if *speedup <= 0 {
		fmt.Fprintln(os.Stderr, "-speedup must be positive")
		os.Exit(2)
	}
	if *scale <= 0 {
		fmt.Fprintln(os.Stderr, "-fleet-scale must be positive")
		os.Exit(2)
	}
	profile = profile.Scale(*scale)
	if *roads {
		profile.RoadNetwork = true
	}

	if *busIngest != "" && *busDir == "" {
		fmt.Fprintln(os.Stderr, "-bus-ingest requires -bus")
		os.Exit(2)
	}

	svc, err := api.NewBackendEngine(profile, *seed, *jitter, *workers, *engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	reg := obs.NewRegistry()
	svc.Instrument(reg)
	tracer := obs.NewTracer(4096)
	svc.RunUntil(*warmup)

	chaosCfg := chaos.Config{
		Seed:         *chaosSeed,
		ErrorProb:    *chaosError,
		ResetProb:    *chaosReset,
		TruncateProb: *chaosTruncate,
		LatencyProb:  *chaosLatProb,
		Latency:      *chaosLatency,
	}
	var injector *chaos.Injector
	if chaosCfg.Enabled() {
		injector = chaos.NewInjector(chaosCfg)
		log.Printf("uberd: chaos enabled (seed %d, error %.3f, reset %.3f, truncate %.3f, latency %.3f up to %s)",
			*chaosSeed, *chaosError, *chaosReset, *chaosTruncate, *chaosLatProb, *chaosLatency)
	}

	// The bus attaches after warmup: the burn-in is not part of the
	// measured record, matching a campaign that starts against a warm
	// backend.
	var busRT *busRuntime
	if *busDir != "" {
		var err error
		busRT, err = startBus(svc, injector, reg, *busDir, *busIngest, *busDrop)
		if err != nil {
			log.Fatalf("uberd: bus: %v", err)
		}
		log.Printf("uberd: bus at %s (ingest %q, drop %v)", *busDir, *busIngest, *busDrop)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Advance the simulation in real time until shutdown. The shutdown
	// path waits for tickDone so no tick publishes to a closing bus.
	tick := svc.World().TickSeconds()
	interval := time.Duration(float64(tick) / *speedup * float64(time.Second))
	ticker := time.NewTicker(interval)
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				svc.Step()
			case <-ctx.Done():
				return
			}
		}
	}()

	// The API mounts at / with per-endpoint metrics; /metrics serves the
	// Prometheus exposition and /debug/pprof/* the runtime profiles.
	// Middleware order (outermost first): shedding rejects before any work
	// is done, fault injection sees only admitted requests, recovery turns
	// handler panics into 500s, and the timeout bounds the real handler.
	// Readiness: the shard may take traffic once the first surge epoch is
	// published and (when streaming) the bus accepts events; shutdown flips
	// draining before the listener closes so a fronting ubergate routes
	// around this shard instead of discovering connection errors.
	ready := api.NewReadiness()
	ready.AddCheck("epoch", svc.EpochPublished)
	if busRT != nil {
		ready.AddCheck("bus", busRT.Open)
	}

	var apiHandler http.Handler = api.NewServer(svc, api.WithMetrics(reg), api.WithTracer(tracer), api.WithReadiness(ready))
	apiHandler = chaos.Timeout(apiHandler, *reqTimeout, reg)
	apiHandler = chaos.Recover(apiHandler, reg)
	if injector != nil {
		apiHandler = injector.Middleware(apiHandler, reg)
	}
	apiHandler = chaos.Shed(apiHandler, *maxInflight, *retryAfter, reg)
	mux := http.NewServeMux()
	mux.Handle("/", apiHandler)
	mux.Handle("GET /metrics", reg.Handler())
	// Health probes bypass the chaos chain: an injected fault must never
	// make the gateway think the shard died, and a draining shard must
	// still answer its last probes.
	mux.Handle("GET /healthz", api.Healthz(svc.Now))
	mux.Handle("GET /readyz", ready.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	log.Printf("uberd: serving %s on %s (engine %s, seed %d, jitter %v, %gx speedup, sim t=%d)",
		profile.Name, *addr, svc.Engine().Name(), *seed, *jitter, *speedup, svc.Now())

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		// Graceful shutdown, in dependency order: fail readiness and give
		// any fronting gateway a drain window to route around us, stop the
		// tick loop (no new sim events), stop serving (no new ping events),
		// then close the bus and let the ingest consumer drain its backlog
		// and make rows + committed offsets durable.
		log.Printf("uberd: shutting down (sim t=%d)", svc.Now())
		ready.SetDraining(true)
		time.Sleep(*drain)
		<-tickDone
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("uberd: shutdown: %v", err)
		}
		if busRT != nil {
			busRT.shutdown(10 * time.Second)
		}
	}
}
