// Event-bus wiring: connects every producing layer of the backend (sim
// driver lifecycle, surge multiplier moves, served pings and
// registrations, injected faults) to an embedded broker, and optionally
// runs the live tsdb ingester as an in-process consumer group so a
// campaign store grows while the server runs — `analyze` reads it like
// any `measure -store tsdb` recording.

package main

import (
	"errors"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/bus"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/record"
)

// busRuntime is the broker plus the optional in-process ingest consumer.
type busRuntime struct {
	broker *bus.Broker
	open   atomic.Bool // true while the broker accepts publishes (readiness)

	cons       *bus.Consumer
	ing        *record.LiveIngester
	ingestDone chan struct{}
}

// Open reports whether the broker is accepting events — the "bus"
// readiness check: a shard configured to stream must not take traffic it
// cannot record.
func (rt *busRuntime) Open() bool { return rt != nil && rt.open.Load() }

// startBus opens the broker at dir, wires all four producers, and (when
// ingestDir is non-empty) starts the live tsdb ingester consuming the
// pings topic under the "uberd-ingest" group.
func startBus(svc *api.Service, inj *chaos.Injector, reg *obs.Registry, dir, ingestDir string, drop bool) (*busRuntime, error) {
	br, err := bus.Open(dir, bus.Options{Drop: drop, Metrics: reg})
	if err != nil {
		return nil, err
	}
	rt := &busRuntime{broker: br}
	// Publish failures are backpressure drops (already counted by the
	// broker) or the shutdown race; neither is worth a log line per event.
	pub := func(t *bus.Topic) func(bus.Event) {
		return func(ev bus.Event) {
			err := t.Publish(ev)
			if err != nil && !errors.Is(err, bus.ErrClosed) && !errors.Is(err, bus.ErrBackpressure) {
				log.Printf("uberd: bus %s: %v", t.Name(), err)
			}
		}
	}

	cars, err := br.Topic(bus.TopicCars, 8)
	if err != nil {
		return nil, err
	}
	svc.World().SetEventSink(pub(cars))

	surgeTopic, err := br.Topic(bus.TopicSurge, 1)
	if err != nil {
		return nil, err
	}
	svc.Engine().SetEventSink(pub(surgeTopic))

	pings, err := br.Topic(bus.TopicPings, 4)
	if err != nil {
		return nil, err
	}
	pingPub := pub(pings)
	svc.SetEventSinks(pingPub, pingPub)

	if inj != nil {
		faults, err := br.Topic(bus.TopicFaults, 1)
		if err != nil {
			return nil, err
		}
		faultPub := pub(faults)
		inj.SetFaultSink(func(f chaos.Fault, path string) {
			faultPub(bus.Event{Time: svc.Now(), Kind: bus.KindFault, Key: f.String(), Area: -1, Str: path})
		})
	}

	if ingestDir != "" {
		if err := rt.startIngest(svc, pings, reg, ingestDir); err != nil {
			br.Close()
			return nil, err
		}
	}
	rt.open.Store(true)
	return rt, nil
}

func (rt *busRuntime) startIngest(svc *api.Service, pings *bus.Topic, reg *obs.Registry, dir string) error {
	cons, err := pings.Subscribe("uberd-ingest")
	if err != nil {
		return err
	}
	hdr := record.Header{City: svc.World().Profile().Name, Start: svc.Now()}
	ing, err := record.NewLiveIngester(dir, hdr, svc.World().Projection(), reg)
	if err != nil {
		cons.Close()
		return err
	}
	rt.cons, rt.ing = cons, ing
	rt.ingestDone = make(chan struct{})
	go func() {
		defer close(rt.ingestDone)
		for {
			ev, ok := cons.Next()
			if !ok {
				return // broker closed and the backlog is drained
			}
			roundDone, err := ing.Handle(ev)
			if err != nil {
				log.Printf("uberd: ingest: %v", err)
				continue
			}
			if roundDone {
				// Rows are durable (Handle committed the round); now the
				// offsets may follow — at-least-once, never losing rows.
				if err := cons.Commit(); err != nil {
					log.Printf("uberd: ingest commit: %v", err)
				}
			}
		}
	}()
	return nil
}

// shutdown closes the broker (stopping producers), waits for the ingest
// consumer to drain the backlog, and flushes rows before offsets.
func (rt *busRuntime) shutdown(timeout time.Duration) {
	rt.open.Store(false)
	if err := rt.broker.Close(); err != nil {
		log.Printf("uberd: bus close: %v", err)
	}
	if rt.ingestDone == nil {
		return
	}
	select {
	case <-rt.ingestDone:
	case <-time.After(timeout):
		log.Printf("uberd: ingest drain timed out after %s", timeout)
	}
	if err := rt.ing.Close(); err != nil {
		log.Printf("uberd: ingest close: %v", err)
	}
	if err := rt.cons.Commit(); err != nil {
		log.Printf("uberd: ingest commit: %v", err)
	}
	rt.cons.Close()
	rows, dups, rounds := rt.ing.Stats()
	log.Printf("uberd: ingested %d rows over %d rounds (%d redeliveries skipped)", rows, rounds, dups)
}
