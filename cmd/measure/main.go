// Command measure runs the paper's measurement campaign — 43 emulated
// Uber Client apps in a grid — against a backend and prints the measured
// aggregates (supply, deaths, surge distribution, EWT distribution,
// jitter events).
//
// With -addr it measures a remote uberd over HTTP at that server's pace;
// without it, it builds an in-process backend and runs at simulation
// speed.
//
// Usage:
//
//	measure -city sf -hours 24 -seed 7 -jitter
//	measure -addr http://localhost:8080 -city sf -rounds 720
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/record"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		city    = flag.String("city", "manhattan", "city profile: manhattan or sf")
		hours   = flag.Int("hours", 6, "simulation hours to measure (in-process mode)")
		seed    = flag.Int64("seed", 42, "simulation seed (in-process mode)")
		jitter  = flag.Bool("jitter", true, "April 2015 mode (in-process mode)")
		addr    = flag.String("addr", "", "remote uberd base URL; empty = in-process")
		rounds  = flag.Int("rounds", 720, "ping rounds in remote mode (1 round / 5 s)")
		recFile = flag.String("record", "", "write the raw pingClient stream to this path")
		store   = flag.String("store", record.StoreJSONL,
			"recording store: jsonl (one gzip file) or tsdb (crash-safe compressed directory)")
	)
	flag.Parse()

	var profile *sim.CityProfile
	switch *city {
	case "manhattan", "mhtn", "nyc":
		profile = sim.Manhattan()
	case "sf", "sanfrancisco":
		profile = sim.SanFrancisco()
	default:
		fmt.Fprintf(os.Stderr, "unknown city %q\n", *city)
		os.Exit(2)
	}

	pts := client.GridLayout(profile.MeasureRect, profile.ClientSpacing, client.NumClients)
	areas := profile.SurgeAreas()
	clientAreas := make([]int, len(pts))
	for i, p := range pts {
		clientAreas[i] = sim.AreaOf(areas, p)
	}
	proj := geo.NewProjection(profile.Origin)

	if *addr != "" {
		remote := api.NewRemote(*addr, nil)
		camp := client.NewCampaign(remote, proj, pts)
		for _, cl := range camp.Clients {
			if err := remote.Register(cl.ID); err != nil {
				fmt.Fprintf(os.Stderr, "register %s: %v\n", cl.ID, err)
				os.Exit(1)
			}
		}
		start, err := remote.NowErr()
		if err != nil {
			fmt.Fprintf(os.Stderr, "backend unreachable: %v\n", err)
			os.Exit(1)
		}
		end := start + int64(*rounds+1)*client.PingPeriod*100 // generous series bound
		ds := measure.NewDataset(measure.Config{
			Profile: profile, Start: start, End: end, ClientAreas: clientAreas,
		}, len(pts))
		camp.AddSink(ds)
		rec := openRecorder(*store, *recFile, profile.Name, start, pts)
		if rec != nil {
			camp.AddSink(rec)
		}
		fmt.Printf("measuring remote %s (%s) for %d rounds...\n", *addr, profile.Name, *rounds)
		for i := 0; i < *rounds; i++ {
			camp.Round()
			time.Sleep(100 * time.Millisecond) // remote clock advances on its own
		}
		ds.Close()
		closeRecorder(rec, *recFile, *store)
		printSummary(ds, camp)
		return
	}

	svc := api.NewBackend(profile, *seed, *jitter)
	camp := client.NewCampaign(svc, svc.World().Projection(), pts)
	camp.RegisterAll(svc)
	end := int64(*hours) * 3600
	ds := measure.NewDataset(measure.Config{
		Profile: profile, Start: 0, End: end, ClientAreas: clientAreas,
	}, len(pts))
	camp.AddSink(ds)

	rec := openRecorder(*store, *recFile, profile.Name, 0, pts)
	if rec != nil {
		camp.AddSink(rec)
	}

	fmt.Printf("measuring %s for %d simulated hours (%d clients)...\n",
		profile.Name, *hours, len(camp.Clients))
	camp.RunSim(svc, end)
	ds.Close()
	closeRecorder(rec, *recFile, *store)
	printSummary(ds, camp)
}

// openRecorder opens the -record store (nil when -record is unset),
// exiting on error.
func openRecorder(kind, path, city string, start int64, pts []geo.Point) record.CampaignWriter {
	if path == "" {
		return nil
	}
	rec, err := record.Create(kind, path,
		record.Header{City: city, Start: start, Clients: pts}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return rec
}

func closeRecorder(rec record.CampaignWriter, path, kind string) {
	if rec == nil {
		return
	}
	if err := rec.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "recording:", err)
		os.Exit(1)
	}
	rows, _ := rec.Written()
	fmt.Printf("recorded %d rows to %s (store=%s)\n", rows, path, kind)
}

func printSummary(ds *measure.Dataset, camp *client.Campaign) {
	fmt.Printf("rounds: %d, ping errors: %d\n", camp.Rounds, camp.Errors)
	if expected := camp.Rounds * int64(len(camp.Clients)); expected > 0 && ds.Gaps > 0 {
		fmt.Printf("gaps: %d of %d expected observations (%.2f%% loss; paper lost ~2.5%%)\n",
			ds.Gaps, expected, 100*float64(ds.Gaps)/float64(expected))
	}

	supply := ds.SupplySeries(core.UberX)
	fmt.Printf("UberX supply per 5-min interval: mean %.1f\n", seriesMean(supply))
	deaths := ds.DeathSeries(core.UberX)
	fmt.Printf("UberX deaths per 5-min interval: mean %.1f\n", seriesMean(deaths))

	if len(ds.EWTSamples) > 0 {
		xs := make([]float64, len(ds.EWTSamples))
		for i, v := range ds.EWTSamples {
			xs[i] = float64(v)
		}
		c := stats.NewCDF(xs)
		fmt.Printf("EWT minutes: median %.2f, p90 %.2f, P(≤4min) %.1f%%\n",
			c.Median(), c.Quantile(0.9), c.At(4)*100)
	}
	if len(ds.SurgeSamples) > 0 {
		xs := make([]float64, len(ds.SurgeSamples))
		for i, v := range ds.SurgeSamples {
			xs[i] = float64(v)
		}
		c := stats.NewCDF(xs)
		fmt.Printf("surge: P(=1) %.1f%%, median %.2f, max %.1f\n",
			c.At(1)*100, c.Median(), c.Quantile(1))
	}
	events := measure.ExtractJitter(ds.Changes)
	fmt.Printf("jitter events detected: %d\n", len(events))
}

func seriesMean(s *stats.Series) float64 {
	var sum float64
	n := 0
	for _, v := range s.Values {
		if v == v { // not NaN
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
