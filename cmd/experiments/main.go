// Command experiments regenerates every table and figure of the paper's
// evaluation against the simulated backend and writes the Markdown report
// (the content of EXPERIMENTS.md).
//
// Usage:
//
//	experiments -preamble -days 1 -seed 42 -out EXPERIMENTS.md
//	experiments -hours 8            # quick pass, no preamble
//	experiments -engine additive -hours 12    # audit one pricing regime
//	experiments -compare-engines -hours 12    # audit all regimes side by side
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/surge"
)

func main() {
	var (
		days     = flag.Int("days", 1, "measurement days per city")
		hours    = flag.Int("hours", 0, "override: measurement hours per city")
		seed     = flag.Int64("seed", 42, "simulation seed")
		out      = flag.String("out", "", "output file (default stdout)")
		preamble = flag.Bool("preamble", false, "prepend the EXPERIMENTS.md reading guide")
		workers  = flag.Int("sim-workers", 0, "parallel tick workers per city simulation (0 = GOMAXPROCS; results are identical for any value)")
		scale    = flag.Float64("fleet-scale", 1, "multiply each city's driver and request targets (load testing; 1 = calibrated size)")
		opencab  = flag.Int("openstreetcab", 0, "run only the two-service price-comparison scenario for this many rush-hour hours (shared road network)")
		engine   = flag.String("engine", "", "audit one pricing engine with the 2015 methodology ("+strings.Join(surge.EngineNames(), ", ")+")")
		compare  = flag.Bool("compare-engines", false, "audit every pricing engine and print the side-by-side distinguishability report")
	)
	flag.Parse()

	if *engine != "" {
		ok := false
		for _, n := range surge.EngineNames() {
			ok = ok || n == *engine
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -engine %q (have %s)\n", *engine, strings.Join(surge.EngineNames(), ", "))
			os.Exit(2)
		}
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	if *opencab > 0 {
		opts := experiments.OpenStreetCabOptions{Seed: *seed, Hours: *opencab, Workers: *workers}
		experiments.WriteOpenStreetCab(w, opts, experiments.RunOpenStreetCab(opts))
		return
	}
	if *compare || *engine != "" {
		opts := experiments.Options{
			Seed:       *seed,
			Days:       *days,
			Hours:      *hours,
			Jitter:     true,
			Workers:    *workers,
			FleetScale: *scale,
		}
		if *compare {
			experiments.WriteEngineComparison(w, opts, experiments.RunEngineComparison(sim.Manhattan(), opts))
		} else {
			experiments.WriteEngineAudit(w, experiments.AuditEngine(sim.Manhattan(), *engine, opts))
		}
		return
	}
	if *preamble {
		experiments.WritePreamble(w)
	}
	experiments.Report(w, experiments.Options{
		Seed:       *seed,
		Days:       *days,
		Hours:      *hours,
		Jitter:     true,
		Workers:    *workers,
		FleetScale: *scale,
	})
}
