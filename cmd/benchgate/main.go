// Command benchgate compares a `go test -bench` run against the committed
// baseline in BENCH_step.json and fails CI when the fleet-scale tick
// regresses. It reads the benchmark output on stdin:
//
//	go test -run '^$' -bench 'BenchmarkStep|BenchmarkSnapshotDelta' \
//	    -benchtime 5x -benchmem . | go run ./cmd/benchgate
//
// Two gates, applied to every benchmark in the baseline's "gate" section:
//
//   - allocs/op may not regress anywhere. Allocation counts in a
//     deterministic simulation are machine-independent, so this gate runs
//     on every host. The comparison allows 1% + 8 allocs of slack: worker
//     goroutine wakeups and map growth timing make the count almost — but
//     not exactly — reproducible run to run.
//   - ns/op may not regress by more than the baseline's tolerance
//     (default 15%), gated only when the host's `cpu:` line matches the
//     baseline host exactly. Wall-clock on a different CPU says nothing
//     about a regression, so foreign hosts only report.
//
// A gate benchmark missing from the input is an error — the sweep cannot
// silently shrink. Bytes/op are reported but not gated (they track allocs
// and the Go version's size classes too closely to pin).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type baseline struct {
	Host struct {
		CPU string `json:"cpu"`
	} `json:"host"`
	Gate struct {
		Benchtime   string             `json:"benchtime"`
		NsTolerance float64            `json:"ns_tolerance"`
		Benchmarks  map[string]metrics `json:"benchmarks"`
	} `json:"gate"`
}

// benchLine matches `go test -bench -benchmem` result rows, with or
// without the -N GOMAXPROCS suffix benchmark names carry on SMP hosts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	baseFile := flag.String("baseline", "BENCH_step.json", "committed baseline file")
	flag.Parse()

	raw, err := os.ReadFile(*baseFile)
	if err != nil {
		fatalf("benchgate: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("benchgate: %s: %v", *baseFile, err)
	}
	if len(base.Gate.Benchmarks) == 0 {
		fatalf("benchgate: %s has no gate benchmarks", *baseFile)
	}
	tol := base.Gate.NsTolerance
	if tol <= 0 {
		tol = 0.15
	}

	got := map[string]metrics{}
	hostCPU := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := cutPrefix(line, "cpu: "); ok {
			hostCPU = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		b, _ := strconv.ParseInt(m[3], 10, 64)
		allocs, _ := strconv.ParseInt(m[4], 10, 64)
		got[m[1]] = metrics{NsOp: ns, BOp: b, AllocsOp: allocs}
	}
	if err := sc.Err(); err != nil {
		fatalf("benchgate: reading stdin: %v", err)
	}

	sameCPU := hostCPU != "" && hostCPU == base.Host.CPU
	if !sameCPU {
		fmt.Printf("benchgate: host cpu %q != baseline %q; ns/op reported but not gated\n",
			hostCPU, base.Host.CPU)
	}

	failed := false
	for name, want := range base.Gate.Benchmarks {
		have, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %s: missing from benchmark output\n", name)
			failed = true
			continue
		}
		nsRatio := have.NsOp / want.NsOp
		status := "ok  "
		// Allocation gate: machine-independent, always on.
		allocCap := want.AllocsOp + want.AllocsOp/100 + 8
		if have.AllocsOp > allocCap {
			status = "FAIL"
			failed = true
			fmt.Printf("FAIL %s: %d allocs/op, baseline %d (cap %d)\n",
				name, have.AllocsOp, want.AllocsOp, allocCap)
		}
		// Time gate: only meaningful on the baseline host.
		if sameCPU && nsRatio > 1+tol {
			status = "FAIL"
			failed = true
			fmt.Printf("FAIL %s: %.0f ns/op is %.2fx baseline %.0f (tolerance %.0f%%)\n",
				name, have.NsOp, nsRatio, want.NsOp, tol*100)
		}
		fmt.Printf("%s %-40s ns/op %12.0f (%.2fx base)   B/op %10d   allocs/op %6d (base %d)\n",
			status, name, have.NsOp, nsRatio, have.BOp, have.AllocsOp, want.AllocsOp)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchgate: all gates passed")
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
