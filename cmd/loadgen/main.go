// Command loadgen drives a running uberd with N concurrent synthetic
// clients in a closed loop and reports throughput plus latency
// percentiles from the obs histograms it records into.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -clients 16 -duration 30s
//	loadgen -addr http://localhost:8080 -clients 8 -rate 2 -city sf
//	loadgen -addr http://localhost:8080 -clients 16 -json > run.json
//	loadgen -gateway -addr http://localhost:8090 -cities sf,manhattan
//
// With -rate 0 (the default) each client issues its next request as soon
// as the previous response lands — the classic closed-loop saturation
// probe. A positive -rate paces each client at that many requests per
// second, emulating the paper's measurement fleet (43 clients, one ping
// per 5 s ≈ -rate 0.2).
//
// With -gateway the target is an ubergate instance fronting several city
// shards: clients are split round-robin across -cities (each querying its
// city's center, so the gateway fans them out by GPS) and the report adds
// per-city requests/errors — the numbers the gateway chaos smoke gates on
// when it kills a shard mid-run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/loadgen"
	"repro/internal/sim"
)

// cityOrigin resolves a city name to its profile center.
func cityOrigin(name string) (geo.LatLng, error) {
	switch name {
	case "manhattan", "mhtn", "nyc":
		return sim.Manhattan().Origin, nil
	case "sf", "sanfrancisco":
		return sim.SanFrancisco().Origin, nil
	default:
		return geo.LatLng{}, fmt.Errorf("unknown city %q (want manhattan or sf)", name)
	}
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL of the uberd backend")
		clients  = flag.Int("clients", 8, "concurrent synthetic clients")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		rate     = flag.Float64("rate", 0, "per-client request rate in req/s (0 = closed-loop max)")
		city     = flag.String("city", "manhattan", "city profile whose center to query: manhattan or sf")
		lat      = flag.Float64("lat", 0, "override query latitude")
		lng      = flag.Float64("lng", 0, "override query longitude")
		pingW    = flag.Int("ping-weight", 8, "pingClient share of the request mix")
		priceW   = flag.Int("price-weight", 1, "estimates/price share of the request mix")
		timeW    = flag.Int("time-weight", 1, "estimates/time share of the request mix")
		citiesArg = flag.String("cities", "", "comma-separated cities for multi-city gateway mode (clients split round-robin; implies -gateway)")
		gwMode    = flag.Bool("gateway", false, "target is an ubergate gateway: run multi-city (default cities sf,manhattan)")
		asJSON   = flag.Bool("json", false, "emit the report as JSON on stdout (banner goes to stderr)")
		noRetry  = flag.Bool("no-retry", false, "disable client retries/circuit breaking (report raw fault rates)")
		failErrs = flag.Bool("fail-on-errors", false, "exit 1 if any client-visible errors remain (chaos-smoke gate)")
	)
	flag.Parse()

	var cities map[string]geo.LatLng
	if *citiesArg != "" {
		*gwMode = true
	}
	if *gwMode {
		names := *citiesArg
		if names == "" {
			names = "sf,manhattan"
		}
		cities = make(map[string]geo.LatLng)
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			origin, err := cityOrigin(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cities[name] = origin
		}
	}

	loc := geo.LatLng{Lat: *lat, Lng: *lng}
	if *lat == 0 && *lng == 0 {
		origin, err := cityOrigin(*city)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		loc = origin
	}

	banner := os.Stdout
	if *asJSON {
		banner = os.Stderr // keep stdout pure JSON for pipelines
	}
	if *gwMode {
		names := make([]string, 0, len(cities))
		for name := range cities {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(banner, "loadgen: %d clients -> gateway %s for %s (rate %g req/s/client, mix %d:%d:%d, cities %s)\n",
			*clients, *addr, *duration, *rate, *pingW, *priceW, *timeW, strings.Join(names, ","))
	} else {
		fmt.Fprintf(banner, "loadgen: %d clients -> %s for %s (rate %g req/s/client, mix %d:%d:%d, loc %.4f,%.4f)\n",
			*clients, *addr, *duration, *rate, *pingW, *priceW, *timeW, loc.Lat, loc.Lng)
	}
	report, err := loadgen.Run(loadgen.Config{
		BaseURL:     *addr,
		Clients:     *clients,
		Duration:    *duration,
		Rate:        *rate,
		PingWeight:  *pingW,
		PriceWeight: *priceW,
		TimeWeight:  *timeW,
		Loc:         loc,
		Cities:      cities,
		NoRetry:     *noRetry,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *asJSON {
		out, err := report.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(report.String())
	}
	if *failErrs && report.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d client-visible errors (want 0)\n", report.Errors)
		os.Exit(1)
	}
}
