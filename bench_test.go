// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index),
// plus ablations for the design choices the architecture documents.
//
// The figure benchmarks share a pair of 4-hour CityRuns (built once) and
// measure the cost of regenerating each figure's analysis from the
// measured corpus; the campaign-shaped benchmarks (Figs 2 and 4) run a
// reduced campaign per iteration.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/road"
	"repro/internal/sim"
	"repro/internal/surge"
)

var (
	benchOnce sync.Once
	benchMHTN *experiments.CityRun
	benchSF   *experiments.CityRun

	benchRoadOnce  sync.Once
	benchRoadGraph *road.Graph
)

func benchRuns(b *testing.B) (*experiments.CityRun, *experiments.CityRun) {
	b.Helper()
	benchOnce.Do(func() {
		opts := experiments.Options{Seed: 42, Hours: 4, Jitter: true}
		benchMHTN = experiments.RunCity(sim.Manhattan(), opts)
		benchSF = experiments.RunCity(sim.SanFrancisco(), opts)
	})
	return benchMHTN, benchSF
}

func BenchmarkFig02VisibilityRadius(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2VisibilityRadius(int64(i)+1, []int{12})
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig04TaxiValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4TaxiValidation(int64(i)+1, 600, 9, 11)
		if res.SupplyCapture <= 0 {
			b.Fatal("no capture")
		}
	}
}

func BenchmarkFig07CarLifespans(b *testing.B) {
	m, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := experiments.Fig7Lifespans(m, s)
		if len(groups) != 4 {
			b.Fatal("bad groups")
		}
	}
}

func BenchmarkFig08TimeSeries(b *testing.B) {
	m, _ := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := experiments.Fig8TimeSeries(m)
		_ = experiments.HourlyMean(fs.Surge)
	}
}

func BenchmarkFig09_10Heatmaps(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig9_10Heatmaps(s)
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

func BenchmarkFig11EWTDistribution(b *testing.B) {
	m, _ := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := experiments.Fig11EWT(m)
		_ = c.At(4)
	}
}

func BenchmarkFig12SurgeDistribution(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := experiments.Fig12Surge(s)
		_ = c.At(1)
	}
}

func BenchmarkFig13SurgeDurations(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := experiments.Fig13SurgeDurations(s)
		_ = d.Client.Len()
	}
}

func BenchmarkFig14SurgeTimeline(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig14SurgeTimeline(s, 3600, 3600+1500)
	}
}

func BenchmarkFig15UpdateTiming(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := experiments.Fig15UpdateTiming(s)
		_ = t.API.Len()
	}
}

func BenchmarkFig16JitterMultipliers(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig16JitterMultipliers(s)
	}
}

func BenchmarkFig17JitterSimultaneity(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig17JitterSimultaneity(s)
	}
}

func BenchmarkFig18_19SurgeAreas(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := experiments.Fig18_19SurgeAreas(s)
		if a.Map == nil {
			b.Fatal("prober missing")
		}
	}
}

func BenchmarkFig20SupplyDemandCorrelation(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig20SupplyDemandCorrelation(s, 60)
	}
}

func BenchmarkFig21EWTCorrelation(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig21EWTCorrelation(s, 60)
	}
}

func BenchmarkTable1Forecasting(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1Forecasting(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig22Transitions(b *testing.B) {
	m, _ := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig22Transitions(m)
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

func BenchmarkFig23AvoidanceFeasibility(b *testing.B) {
	m, _ := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := experiments.Fig23AvoidanceFeasibility(m)
		if len(cl) == 0 {
			b.Fatal("no clients")
		}
	}
}

func BenchmarkFig24AvoidanceSavings(b *testing.B) {
	_, s := benchRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig24AvoidanceSavings(s)
	}
}

// BenchmarkBackendDay measures raw simulation throughput: one simulated
// Manhattan hour per iteration (no measurement apparatus).
func BenchmarkBackendDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := sim.NewWorld(sim.Config{Profile: sim.Manhattan(), Seed: int64(i) + 1})
		e := surge.New(w, surge.Config{Params: sim.Manhattan().Surge, Seed: int64(i) + 1})
		r := &surge.Runner{World: w, Engine: e}
		r.RunUntil(3600)
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationTickRate compares the default 5-second tick against a
// 1-second tick: the finer tick quintuples work without changing any
// 5-minute observable.
func BenchmarkAblationTickRate(b *testing.B) {
	for _, tick := range []int64{1, 5} {
		name := map[int64]string{1: "tick=1s", 5: "tick=5s"}[tick]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := sim.NewWorld(sim.Config{
					Profile: sim.Manhattan(), Seed: 7, TickSeconds: tick,
				})
				w.Run(1800)
			}
		})
	}
}

// BenchmarkAblationGridVsLinear compares the uniform-grid 8-nearest query
// against a linear scan at the densities the backend serves.
func BenchmarkAblationGridVsLinear(b *testing.B) {
	const n = 600
	rng := rand.New(rand.NewSource(3))
	bounds := geo.NewRect(geo.Point{X: -2000, Y: -2000}, geo.Point{X: 2000, Y: 2000})
	grid := geo.NewGrid(bounds, 250)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64()*4000 - 2000, Y: rng.Float64()*4000 - 2000}
		grid.Insert(int64(i), pts[i])
	}
	query := func() geo.Point {
		return geo.Point{X: rng.Float64()*4000 - 2000, Y: rng.Float64()*4000 - 2000}
	}
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid.KNearest(query(), 8)
		}
	})
	b.Run("linear", func(b *testing.B) {
		type cand struct {
			d  float64
			id int
		}
		for i := 0; i < b.N; i++ {
			q := query()
			best := make([]cand, 0, 9)
			for id, p := range pts {
				d := geo.Dist(q, p)
				// Insertion into a bounded sorted slice.
				pos := len(best)
				for pos > 0 && best[pos-1].d > d {
					pos--
				}
				if pos < 8 {
					if len(best) < 8 {
						best = append(best, cand{})
					}
					copy(best[pos+1:], best[pos:])
					best[pos] = cand{d: d, id: id}
				}
			}
		}
	})
}

// BenchmarkAblationJitter measures the overhead of the jitter bug path in
// the client stream.
func BenchmarkAblationJitter(b *testing.B) {
	for _, jitter := range []bool{false, true} {
		name := map[bool]string{false: "jitter=off", true: "jitter=on"}[jitter]
		b.Run(name, func(b *testing.B) {
			w := sim.NewWorld(sim.Config{Profile: sim.SanFrancisco(), Seed: 5})
			e := surge.New(w, surge.Config{Params: sim.SanFrancisco().Surge, Seed: 5, Jitter: jitter})
			r := &surge.Runner{World: w, Engine: e}
			r.RunUntil(3600)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ClientMultiplier("bench-client", i%4, w.Now())
			}
		})
	}
}

// --- Fleet-scale sweep -------------------------------------------------
//
// The benchmarks below are the performance contract for the ROADMAP's
// "1M drivers stepping in real time" north-star. They step a bare world
// (no campaign, no surge engine) so the numbers isolate the simulation
// tick: struct-of-arrays movement, parallel spawn/dispatch, and the
// incremental snapshot. BENCH_step.json records the blessed numbers for
// these benchmarks (plus the pre-refactor AoS figures they replaced) and
// cmd/benchgate compares fresh runs against it in CI.

// fleetWorld builds a Manhattan world rescaled to seed ~n drivers at the
// midnight diurnal trough. The peak targets are the exact values the AoS
// baselines in BENCH_step.json were recorded with — keep them in sync.
func fleetWorld(b *testing.B, name string) *sim.World {
	b.Helper()
	p := sim.Manhattan()
	switch name {
	case "10k":
		p.PeakDrivers, p.PeakRequestsPerHour = 22200, 2600
	case "100k":
		p.PeakDrivers, p.PeakRequestsPerHour = 222000, 26000
	case "1M":
		p.PeakDrivers, p.PeakRequestsPerHour = 2220000, 260000
	default:
		b.Fatalf("unknown fleet size %q", name)
	}
	return sim.NewWorld(sim.Config{Profile: p, Seed: 1, Workers: 1})
}

// BenchmarkStep measures one serial world tick at three fleet sizes.
// Workers is pinned to 1 so the number tracks per-core throughput (the
// phase-parallel speedup is worker-invariant by construction and
// benchmarked separately in internal/sim). The road=10k variant steps
// the same ~10k-driver world on the street network (A* cruise and trip
// routes, road-ETA dispatch refinement, congestion feedback) — the gate
// holds it within 3× the euclidean fleet=10k tick.
func BenchmarkStep(b *testing.B) {
	for _, size := range []string{"10k", "100k", "1M"} {
		b.Run("fleet="+size, func(b *testing.B) {
			w := fleetWorld(b, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		})
	}
	b.Run("road=10k", func(b *testing.B) {
		p := sim.Manhattan()
		p.PeakDrivers, p.PeakRequestsPerHour = 22200, 2600
		p.RoadNetwork = true
		w := sim.NewWorld(sim.Config{Profile: p, Seed: 1, Workers: 1})
		// The first ticks plan initial cruise routes for the whole fleet;
		// pay that outside the timer so the number is the steady tick.
		for i := 0; i < 20; i++ {
			w.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step()
		}
	})
}

// BenchmarkRoute measures one bidirectional A*+ALT query on the ~50k-node
// benchmark street grid (random endpoint pairs, free flow). The routing
// budget everything road-mode does per tick hangs off this number; the
// gate keeps it under a millisecond.
func BenchmarkRoute(b *testing.B) {
	benchRoadOnce.Do(func() { benchRoadGraph = road.BenchGraph() })
	g := benchRoadGraph
	rt := road.NewRouter(g)
	rng := rand.New(rand.NewSource(9))
	n := int32(g.NumNodes())
	// Warm the scratch buffers so steady-state queries are allocation-free.
	rt.Route(0, n-1, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, to := rng.Int31n(n), rng.Int31n(n)
		if _, _, ok := rt.Route(from, to, nil); !ok && from != to {
			b.Fatalf("no route %d -> %d", from, to)
		}
	}
}

// BenchmarkSnapshotDelta measures the incremental snapshot build: each
// iteration steps the world off the clock, then times only the delta
// rebuild of the cells the tick touched.
func BenchmarkSnapshotDelta(b *testing.B) {
	for _, size := range []string{"10k", "100k"} {
		b.Run("fleet="+size, func(b *testing.B) {
			w := fleetWorld(b, size)
			w.Snapshot() // pay the full first build before the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w.Step()
				b.StartTimer()
				_ = w.Snapshot()
			}
		})
	}
}
